(* Unit tests for the congestion-control algorithms, driven through the
   Cca interface with synthetic ack/loss sequences (no network). *)

module Cca = Ccsim_cca.Cca
module U = Ccsim_util

let mss = U.Units.mss
let fmss = float_of_int mss

let ack ?(now = 1.0) ?(rtt = Some 0.1) ?(srtt = 0.1) ?(min_rtt = 0.1) ?(newly = mss)
    ?(inflight = 20 * mss) ?(rate = 10e6) ?(app_limited = false) () =
  {
    Cca.now;
    rtt_sample = rtt;
    srtt;
    min_rtt;
    newly_acked = newly;
    inflight;
    delivery_rate = rate;
    app_limited;
    mss;
  }

let loss ?(now = 1.0) ?(inflight = 20 * mss) () = { Cca.now; inflight; mss }

(* Feed one RTT worth of acks for the current window. *)
let ack_window ?now ?srtt ?min_rtt ?rate cca =
  let packets = max 1 (int_of_float (cca.Cca.cwnd /. fmss)) in
  for _ = 1 to packets do
    cca.Cca.on_ack (ack ?now ?srtt ?min_rtt ?rate ())
  done

(* --- generic behaviours expected of every window-based CCA ------------------- *)

let window_ccas () =
  [
    ("reno", Ccsim_cca.Reno.create ());
    ("cubic", Ccsim_cca.Cubic.create ());
    ("vegas", Ccsim_cca.Vegas.create ());
    ("aimd", Ccsim_cca.Aimd.create ());
  ]

let test_initial_window () =
  List.iter
    (fun (name, cca) ->
      Alcotest.(check (float 1.0)) (name ^ " starts at IW10") (10.0 *. fmss) cca.Cca.cwnd)
    (window_ccas ())

let test_slow_start_grows_fast () =
  List.iter
    (fun (name, cca) ->
      let before = cca.Cca.cwnd in
      ack_window cca;
      Alcotest.(check bool)
        (name ^ " roughly doubles in slow start")
        true
        (cca.Cca.cwnd > 1.8 *. before))
    (window_ccas ())

let test_loss_shrinks_window () =
  List.iter
    (fun (name, cca) ->
      for _ = 1 to 5 do
        ack_window cca
      done;
      let before = cca.Cca.cwnd in
      cca.Cca.on_loss (loss ());
      Alcotest.(check bool) (name ^ " backs off on loss") true (cca.Cca.cwnd < before))
    (window_ccas ())

let test_rto_collapses_window () =
  List.iter
    (fun (name, cca) ->
      for _ = 1 to 5 do
        ack_window cca
      done;
      cca.Cca.on_rto ~now:2.0;
      Alcotest.(check bool)
        (name ^ " collapses on RTO")
        true
        (cca.Cca.cwnd <= 2.0 *. fmss +. 1e-6))
    (window_ccas ())

let test_window_floor () =
  List.iter
    (fun (name, cca) ->
      for _ = 1 to 20 do
        cca.Cca.on_loss (loss ())
      done;
      Alcotest.(check bool)
        (name ^ " never below 2 MSS")
        true
        (cca.Cca.cwnd >= 2.0 *. fmss -. 1e-6))
    (window_ccas ())

(* --- Reno specifics ------------------------------------------------------------ *)

let test_reno_halves_on_loss () =
  let cca = Ccsim_cca.Reno.create () in
  for _ = 1 to 6 do
    ack_window cca
  done;
  let before = cca.Cca.cwnd in
  cca.Cca.on_loss (loss ());
  Alcotest.(check (float 1.0)) "multiplicative decrease 0.5" (before /. 2.0) cca.Cca.cwnd

let test_reno_linear_in_avoidance () =
  let cca = Ccsim_cca.Reno.create () in
  (* Force out of slow start. *)
  for _ = 1 to 6 do
    ack_window cca
  done;
  cca.Cca.on_loss (loss ());
  let before = cca.Cca.cwnd in
  ack_window cca;
  (* One RTT of acks adds ~1 MSS in congestion avoidance. *)
  Alcotest.(check (float (0.3 *. fmss))) "additive increase 1 MSS/RTT" (before +. fmss)
    cca.Cca.cwnd

(* --- AIMD parameterization ------------------------------------------------------- *)

let test_aimd_beta () =
  let cca = Ccsim_cca.Aimd.create ~a:1.0 ~b:0.7 () in
  for _ = 1 to 6 do
    ack_window cca
  done;
  let before = cca.Cca.cwnd in
  cca.Cca.on_loss (loss ());
  Alcotest.(check (float 1.0)) "beta 0.7" (0.7 *. before) cca.Cca.cwnd

let test_aimd_aggressive_alpha_grows_faster () =
  let gentle = Ccsim_cca.Aimd.create ~a:1.0 ~b:0.5 () in
  let aggressive = Ccsim_cca.Aimd.create ~a:4.0 ~b:0.5 () in
  List.iter
    (fun cca ->
      for _ = 1 to 6 do
        ack_window cca
      done;
      cca.Cca.on_loss (loss ()))
    [ gentle; aggressive ];
  let g0 = gentle.Cca.cwnd and a0 = aggressive.Cca.cwnd in
  for _ = 1 to 3 do
    ack_window gentle;
    ack_window aggressive
  done;
  Alcotest.(check bool) "a=4 grows faster" true
    (aggressive.Cca.cwnd -. a0 > 2.0 *. (gentle.Cca.cwnd -. g0))

let test_aimd_validates_parameters () =
  Alcotest.check_raises "b out of range" (Invalid_argument "Aimd.create: b must be in (0,1)")
    (fun () -> ignore (Ccsim_cca.Aimd.create ~b:1.5 ()))

(* --- Cubic specifics ---------------------------------------------------------------- *)

let test_cubic_beta_07 () =
  let cca = Ccsim_cca.Cubic.create () in
  for _ = 1 to 6 do
    ack_window cca
  done;
  let before = cca.Cca.cwnd in
  cca.Cca.on_loss (loss ());
  Alcotest.(check (float 1.0)) "beta 0.7" (0.7 *. before) cca.Cca.cwnd

let test_cubic_concave_then_convex () =
  let cca = Ccsim_cca.Cubic.create () in
  for _ = 1 to 6 do
    ack_window cca
  done;
  cca.Cca.on_loss (loss ());
  (* Growth rate shrinks while approaching W_max, then grows past it. *)
  let now = ref 1.0 in
  let growth_at_plateau = ref 0.0 and growth_later = ref 0.0 in
  for round = 1 to 120 do
    let before = cca.Cca.cwnd in
    now := !now +. 0.1;
    let packets = max 1 (int_of_float (cca.Cca.cwnd /. fmss)) in
    for _ = 1 to packets do
      cca.Cca.on_ack (ack ~now:!now ())
    done;
    let delta = cca.Cca.cwnd -. before in
    if round = 80 then growth_at_plateau := delta;
    if round = 120 then growth_later := delta
  done;
  Alcotest.(check bool) "nearly flat at W_max" true (!growth_at_plateau < 0.2 *. fmss);
  Alcotest.(check bool) "convex growth past W_max" true
    (!growth_later > 4.0 *. !growth_at_plateau)

(* --- Vegas specifics ------------------------------------------------------------------ *)

let test_vegas_backs_off_on_delay () =
  let cca = Ccsim_cca.Vegas.create () in
  (* Grow a sizeable window first, then leave slow start: the Vegas diff
     signal is proportional to the window, so a tiny window sits inside
     the [alpha, beta] dead zone. *)
  for _ = 1 to 4 do
    ack_window cca
  done;
  cca.Cca.on_loss (loss ());
  let before = cca.Cca.cwnd in
  (* Heavily queued path: srtt far above min_rtt -> decrease. *)
  let now = ref 10.0 in
  for _ = 1 to 40 do
    now := !now +. 0.3;
    cca.Cca.on_ack (ack ~now:!now ~srtt:0.3 ~min_rtt:0.1 ())
  done;
  Alcotest.(check bool) "window reduced under queueing" true (cca.Cca.cwnd < before)

let test_vegas_grows_when_queue_empty () =
  let cca = Ccsim_cca.Vegas.create () in
  cca.Cca.on_loss (loss ());
  let before = cca.Cca.cwnd in
  let now = ref 10.0 in
  for _ = 1 to 40 do
    now := !now +. 0.1;
    cca.Cca.on_ack (ack ~now:!now ~srtt:0.1001 ~min_rtt:0.1 ())
  done;
  Alcotest.(check bool) "window grows on an empty path" true (cca.Cca.cwnd > before)

(* --- Copa ---------------------------------------------------------------------------- *)

let test_copa_tracks_target_rate () =
  let cca = Ccsim_cca.Copa.create ~delta:0.5 () in
  (* With dq = 0.05 s the target is 1/(0.5*0.05) = 40 pkts/s; at srtt
     0.15 s that's a window of 6 packets. Start far above: must shrink. *)
  let now = ref 0.0 in
  for _ = 1 to 400 do
    now := !now +. 0.01;
    cca.Cca.on_ack (ack ~now:!now ~srtt:0.15 ~min_rtt:0.1 ())
  done;
  let w_pkts = cca.Cca.cwnd /. fmss in
  Alcotest.(check bool) "converges near target window" true (w_pkts > 3.0 && w_pkts < 12.0)

let test_copa_mild_loss_reaction () =
  let cca = Ccsim_cca.Copa.create () in
  let now = ref 0.0 in
  for _ = 1 to 100 do
    now := !now +. 0.01;
    cca.Cca.on_ack (ack ~now:!now ~srtt:0.12 ~min_rtt:0.1 ())
  done;
  let before = cca.Cca.cwnd in
  cca.Cca.on_loss (loss ());
  Alcotest.(check bool) "halves at most" true (cca.Cca.cwnd >= 0.5 *. before -. 1e-6)

(* --- BBR ----------------------------------------------------------------------------- *)

let test_bbr_paces_at_measured_bandwidth () =
  let cca = Ccsim_cca.Bbr.create () in
  let now = ref 0.0 in
  for _ = 1 to 500 do
    now := !now +. 0.01;
    cca.Cca.on_ack (ack ~now:!now ~rate:20e6 ~inflight:(30 * mss) ())
  done;
  Alcotest.(check bool) "pacing within [0.7, 3] x btlbw" true
    (cca.Cca.pacing_rate > 0.7 *. 20e6 && cca.Cca.pacing_rate < 3.0 *. 20e6)

let test_bbr_cwnd_tracks_bdp () =
  let cca = Ccsim_cca.Bbr.create () in
  let now = ref 0.0 in
  for _ = 1 to 1000 do
    now := !now +. 0.01;
    cca.Cca.on_ack (ack ~now:!now ~rate:20e6 ~rtt:(Some 0.1) ~min_rtt:0.1 ~inflight:(30 * mss) ())
  done;
  (* BDP = 20e6 * 0.1 / 8 = 250 kB; cwnd_gain 2 in PROBE_BW. *)
  Alcotest.(check bool) "cwnd ~ 2x BDP" true
    (cca.Cca.cwnd > 1.2 *. 250_000.0 && cca.Cca.cwnd < 3.0 *. 250_000.0)

let test_bbr_ignores_isolated_loss () =
  let cca = Ccsim_cca.Bbr.create () in
  let now = ref 0.0 in
  for _ = 1 to 200 do
    now := !now +. 0.01;
    cca.Cca.on_ack (ack ~now:!now ~rate:20e6 ())
  done;
  let before = cca.Cca.cwnd in
  cca.Cca.on_loss (loss ());
  Alcotest.(check (float 1e-9)) "loss ignored" before cca.Cca.cwnd

let test_bbr_app_limited_samples_do_not_raise_estimate () =
  let cca = Ccsim_cca.Bbr.create () in
  let now = ref 0.0 in
  for _ = 1 to 200 do
    now := !now +. 0.01;
    cca.Cca.on_ack (ack ~now:!now ~rate:10e6 ())
  done;
  let pace_before = cca.Cca.pacing_rate in
  (* App-limited samples claiming much higher rates must be ignored...
     unless they *exceed* the filter (they cannot raise it here since the
     sample is below). *)
  for _ = 1 to 100 do
    now := !now +. 0.01;
    cca.Cca.on_ack (ack ~now:!now ~rate:5e6 ~app_limited:true ())
  done;
  Alcotest.(check bool) "estimate not dragged down immediately" true
    (cca.Cca.pacing_rate >= 0.5 *. pace_before)

(* --- TFRC ------------------------------------------------------------------------------ *)

let test_tfrc_doubles_before_first_loss () =
  let cca = Ccsim_cca.Tfrc.create () in
  let r0 = cca.Cca.pacing_rate in
  cca.Cca.on_ack (ack ~now:0.2 ());
  cca.Cca.on_ack (ack ~now:0.4 ());
  Alcotest.(check bool) "rate grew" true (cca.Cca.pacing_rate > r0)

let test_tfrc_equation_rate_reasonable () =
  let cca = Ccsim_cca.Tfrc.create () in
  (* Create a loss history of ~1% loss with RTT 100 ms. *)
  let now = ref 0.0 in
  for _ = 1 to 10 do
    for _ = 1 to 100 do
      now := !now +. 0.001;
      cca.Cca.on_ack (ack ~now:!now ())
    done;
    cca.Cca.on_loss (loss ~now:!now ())
  done;
  (* TCP model at p=0.01, RTT=0.1, s=1448B predicts roughly
     1448*8/(0.1*sqrt(2*0.01/3)) ~ 1.4 Mbit/s. Accept a wide band. *)
  Alcotest.(check bool) "equation ballpark" true
    (cca.Cca.pacing_rate > 0.3e6 && cca.Cca.pacing_rate < 5e6)

let test_tfrc_higher_loss_means_lower_rate () =
  let run loss_every =
    let cca = Ccsim_cca.Tfrc.create () in
    let now = ref 0.0 in
    for _ = 1 to 12 do
      for _ = 1 to loss_every do
        now := !now +. 0.001;
        cca.Cca.on_ack (ack ~now:!now ())
      done;
      cca.Cca.on_loss (loss ~now:!now ())
    done;
    cca.Cca.pacing_rate
  in
  Alcotest.(check bool) "p=4% slower than p=0.25%" true (run 25 < run 400)

(* --- fixed CCAs -------------------------------------------------------------------------- *)

let test_fixed_window () =
  let cca = Cca.fixed_window ~cwnd_bytes:50_000 in
  cca.Cca.on_ack (ack ());
  cca.Cca.on_loss (loss ());
  cca.Cca.on_rto ~now:1.0;
  Alcotest.(check (float 1e-9)) "window never moves" 50_000.0 cca.Cca.cwnd

let test_fixed_rate () =
  let cca = Cca.fixed_rate ~rate_bps:3e6 in
  cca.Cca.on_ack (ack ());
  Alcotest.(check (float 1e-9)) "rate never moves" 3e6 cca.Cca.pacing_rate

let suite =
  [
    ("all: initial window is IW10", `Quick, test_initial_window);
    ("all: slow start doubles", `Quick, test_slow_start_grows_fast);
    ("all: loss shrinks the window", `Quick, test_loss_shrinks_window);
    ("all: RTO collapses the window", `Quick, test_rto_collapses_window);
    ("all: window floor 2 MSS", `Quick, test_window_floor);
    ("reno: halves on loss", `Quick, test_reno_halves_on_loss);
    ("reno: 1 MSS/RTT in avoidance", `Quick, test_reno_linear_in_avoidance);
    ("aimd: configurable beta", `Quick, test_aimd_beta);
    ("aimd: alpha scales growth", `Quick, test_aimd_aggressive_alpha_grows_faster);
    ("aimd: parameter validation", `Quick, test_aimd_validates_parameters);
    ("cubic: beta 0.7", `Quick, test_cubic_beta_07);
    ("cubic: convex growth past W_max", `Quick, test_cubic_concave_then_convex);
    ("vegas: backs off under queueing", `Quick, test_vegas_backs_off_on_delay);
    ("vegas: grows on empty path", `Quick, test_vegas_grows_when_queue_empty);
    ("copa: converges toward target", `Quick, test_copa_tracks_target_rate);
    ("copa: mild loss reaction", `Quick, test_copa_mild_loss_reaction);
    ("bbr: paces at measured bandwidth", `Quick, test_bbr_paces_at_measured_bandwidth);
    ("bbr: cwnd tracks BDP", `Quick, test_bbr_cwnd_tracks_bdp);
    ("bbr: ignores isolated loss", `Quick, test_bbr_ignores_isolated_loss);
    ("bbr: app-limited filter", `Quick, test_bbr_app_limited_samples_do_not_raise_estimate);
    ("tfrc: doubles before first loss", `Quick, test_tfrc_doubles_before_first_loss);
    ("tfrc: equation ballpark", `Quick, test_tfrc_equation_rate_reasonable);
    ("tfrc: monotone in loss rate", `Quick, test_tfrc_higher_loss_means_lower_rate);
    ("fixed window control", `Quick, test_fixed_window);
    ("fixed rate control", `Quick, test_fixed_rate);
  ]
