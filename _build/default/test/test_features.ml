(* Tests for opt-in TCP features: delayed acks and HyStart. *)

module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module Tcp = Ccsim_tcp
module U = Ccsim_util

let make_topo ?(rate = 20e6) ?(delay = 0.02) sim =
  Net.Topology.dumbbell sim ~rate_bps:rate ~delay_s:delay ()

(* --- delayed acks ------------------------------------------------------------- *)

let test_delack_halves_ack_count () =
  let run ~delayed_ack =
    let sim = Sim.create () in
    let topo = make_topo sim in
    let conn =
      Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) ~delayed_ack ()
    in
    Tcp.Sender.write conn.sender 500_000;
    Tcp.Sender.close conn.sender;
    Sim.run ~until:20.0 sim;
    (Tcp.Receiver.acks_sent conn.receiver, Tcp.Receiver.bytes_received conn.receiver)
  in
  let acks_per_packet, got = run ~delayed_ack:false in
  let acks_delayed, got_delayed = run ~delayed_ack:true in
  Alcotest.(check int) "both complete" got got_delayed;
  Alcotest.(check bool) "roughly half the acks" true
    (float_of_int acks_delayed < 0.65 *. float_of_int acks_per_packet)

let test_delack_timer_fires_for_odd_tail () =
  (* A single in-order segment must still be acked (after <= 40 ms). *)
  let sim = Sim.create () in
  let acks = ref [] in
  let receiver =
    Tcp.Receiver.create sim ~flow:0
      ~ack_path:(fun pkt -> acks := (Sim.now sim, pkt.Net.Packet.ack) :: !acks)
      ~delayed_ack:true ()
  in
  Tcp.Receiver.handle_data receiver
    (Net.Packet.data ~flow:0 ~seq:0 ~payload_bytes:1000 ~sent_at:0.0 ());
  Sim.run ~until:1.0 sim;
  match !acks with
  | [ (at, 1000) ] ->
      Alcotest.(check bool) "fired within the 40 ms delack timer" true (at <= 0.045)
  | _ -> Alcotest.fail "expected exactly one delayed ack"

let test_delack_immediate_on_out_of_order () =
  let sim = Sim.create () in
  let acks = ref 0 in
  let receiver =
    Tcp.Receiver.create sim ~flow:0 ~ack_path:(fun _ -> incr acks) ~delayed_ack:true ()
  in
  (* An out-of-order arrival must produce an immediate (SACK-carrying)
     ack, not wait for the timer. *)
  Tcp.Receiver.handle_data receiver
    (Net.Packet.data ~flow:0 ~seq:5000 ~payload_bytes:1000 ~sent_at:0.0 ());
  Alcotest.(check int) "immediate dupack" 1 !acks

let test_delack_transfer_still_fast () =
  (* Delayed acks must not add per-window stalls on a bulk transfer. *)
  let sim = Sim.create () in
  let topo = make_topo ~rate:10e6 sim in
  let conn =
    Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ()) ~delayed_ack:true ()
  in
  Tcp.Sender.set_unlimited conn.sender;
  Sim.run ~until:20.0 sim;
  let goodput = Tcp.Connection.goodput_bps conn ~over:20.0 in
  Alcotest.(check bool) "still fills the link" true (goodput > 8e6)

(* --- HyStart ------------------------------------------------------------------- *)

let overshoot_drops ~hystart =
  let sim = Sim.create () in
  let qdisc = Net.Fifo.create () in
  let topo = Net.Topology.dumbbell sim ~rate_bps:20e6 ~delay_s:0.04 ~qdisc () in
  let conn =
    Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Cubic.create ~hystart ()) ()
  in
  Tcp.Sender.set_unlimited conn.sender;
  Sim.run ~until:10.0 sim;
  (qdisc.Net.Qdisc.stats.dropped, Tcp.Connection.goodput_bps conn ~over:10.0)

let test_hystart_avoids_overshoot_losses () =
  let drops_without, _ = overshoot_drops ~hystart:false in
  let drops_with, goodput_with = overshoot_drops ~hystart:true in
  Alcotest.(check bool) "slow start overshoot drops packets" true (drops_without > 50);
  Alcotest.(check bool) "hystart avoids the burst loss" true
    (drops_with < drops_without / 5);
  Alcotest.(check bool) "throughput broadly preserved" true (goodput_with > 12e6)

let test_hystart_heuristic () =
  Alcotest.(check bool) "no exit without min" false
    (Ccsim_cca.Cca.hystart_delay_exceeded ~min_rtt:infinity ~rtt:1.0);
  Alcotest.(check bool) "small increase tolerated" false
    (Ccsim_cca.Cca.hystart_delay_exceeded ~min_rtt:0.1 ~rtt:0.105);
  Alcotest.(check bool) "large increase exits" true
    (Ccsim_cca.Cca.hystart_delay_exceeded ~min_rtt:0.1 ~rtt:0.12);
  Alcotest.(check bool) "4ms floor on short paths" false
    (Ccsim_cca.Cca.hystart_delay_exceeded ~min_rtt:0.004 ~rtt:0.0075)

let test_hystart_reno_also () =
  let sim = Sim.create () in
  let qdisc = Net.Fifo.create () in
  let topo = Net.Topology.dumbbell sim ~rate_bps:20e6 ~delay_s:0.04 ~qdisc () in
  let conn =
    Tcp.Connection.establish topo ~flow:0 ~cca:(Ccsim_cca.Reno.create ~hystart:true ()) ()
  in
  Tcp.Sender.set_unlimited conn.sender;
  Sim.run ~until:10.0 sim;
  Alcotest.(check bool) "reno+hystart avoids burst loss" true
    (qdisc.Net.Qdisc.stats.dropped < 20)

let suite =
  [
    ("delack: halves ack count", `Quick, test_delack_halves_ack_count);
    ("delack: timer covers odd tail", `Quick, test_delack_timer_fires_for_odd_tail);
    ("delack: immediate on out-of-order", `Quick, test_delack_immediate_on_out_of_order);
    ("delack: bulk transfer unaffected", `Quick, test_delack_transfer_still_fast);
    ("hystart: avoids overshoot losses", `Quick, test_hystart_avoids_overshoot_losses);
    ("hystart: delay heuristic", `Quick, test_hystart_heuristic);
    ("hystart: works for reno too", `Quick, test_hystart_reno_also);
  ]
