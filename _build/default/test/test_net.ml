(* Tests for the network layer: packets, qdiscs, shapers, links,
   dispatch, topology. *)

module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module Packet = Ccsim_net.Packet
module U = Ccsim_util

let check_float = Alcotest.(check (float 1e-9))

let data ?(flow = 0) ?(size = 1000) ?(seq = 0) () =
  Packet.data ~flow ~seq ~payload_bytes:size ~header_bytes:0 ~sent_at:0.0 ()

(* --- Packet ------------------------------------------------------------------ *)

let test_packet_uids_unique () =
  let a = data () and b = data () in
  Alcotest.(check bool) "distinct uids" true (a.uid <> b.uid)

let test_packet_sizes () =
  let p = Packet.data ~flow:1 ~seq:100 ~payload_bytes:1448 ~sent_at:1.0 () in
  Alcotest.(check int) "wire size includes header" (1448 + U.Units.header_bytes) p.size_bytes;
  Alcotest.(check int) "end seq" (100 + 1448) (Packet.end_seq p);
  Alcotest.(check bool) "is data" true (Packet.is_data p);
  let a = Packet.ack ~flow:1 ~ack:500 ~sent_at:1.0 () in
  Alcotest.(check bool) "ack is not data" false (Packet.is_data a)

(* --- Fifo -------------------------------------------------------------------- *)

let test_fifo_order_and_backlog () =
  let q = Net.Fifo.create ~limit_bytes:10_000 () in
  let p1 = data ~seq:1 () and p2 = data ~seq:2 () in
  Alcotest.(check bool) "enq 1" true (q.Net.Qdisc.enqueue p1);
  Alcotest.(check bool) "enq 2" true (q.Net.Qdisc.enqueue p2);
  Alcotest.(check int) "backlog" 2000 (q.Net.Qdisc.backlog_bytes ());
  (match q.Net.Qdisc.dequeue () with
  | Some p -> Alcotest.(check int) "fifo order" 1 p.seq
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "backlog drained" 1000 (q.Net.Qdisc.backlog_bytes ())

let test_fifo_drop_tail () =
  let q = Net.Fifo.create ~limit_bytes:2500 () in
  Alcotest.(check bool) "enq 1" true (q.Net.Qdisc.enqueue (data ()));
  Alcotest.(check bool) "enq 2" true (q.Net.Qdisc.enqueue (data ()));
  Alcotest.(check bool) "third dropped" false (q.Net.Qdisc.enqueue (data ()));
  Alcotest.(check int) "drop counted" 1 q.Net.Qdisc.stats.dropped;
  check_float "loss rate" (1.0 /. 3.0) (Net.Qdisc.loss_rate q)

let test_fifo_packet_limit () =
  let q = Net.Fifo.create ~limit_bytes:1_000_000 ~limit_packets:2 () in
  ignore (q.Net.Qdisc.enqueue (data ()));
  ignore (q.Net.Qdisc.enqueue (data ()));
  Alcotest.(check bool) "packet limit" false (q.Net.Qdisc.enqueue (data ()))

(* --- Drr --------------------------------------------------------------------- *)

let test_drr_round_robin () =
  let q = Net.Drr.create ~quantum_bytes:1000 ~limit_bytes:100_000 () in
  (* Flow 0 floods; flow 1 has two packets. Service must alternate. *)
  for i = 0 to 9 do
    ignore (q.Net.Qdisc.enqueue (data ~flow:0 ~seq:i ()))
  done;
  ignore (q.Net.Qdisc.enqueue (data ~flow:1 ~seq:100 ()));
  ignore (q.Net.Qdisc.enqueue (data ~flow:1 ~seq:101 ()));
  let served = ref [] in
  for _ = 1 to 4 do
    match q.Net.Qdisc.dequeue () with
    | Some p -> served := p.Packet.flow :: !served
    | None -> served := -1 :: !served
  done;
  let served = !served in
  let flow1_served = List.length (List.filter (fun f -> f = 1) served) in
  Alcotest.(check bool) "flow 1 served early" true (flow1_served >= 1)

let test_drr_fair_bytes () =
  let q = Net.Drr.create ~quantum_bytes:1000 ~limit_bytes:1_000_000 () in
  for i = 0 to 99 do
    ignore (q.Net.Qdisc.enqueue (data ~flow:0 ~seq:i ~size:1000 ()));
    ignore (q.Net.Qdisc.enqueue (data ~flow:1 ~seq:i ~size:1000 ()))
  done;
  let counts = Hashtbl.create 2 in
  for _ = 1 to 100 do
    match q.Net.Qdisc.dequeue () with
    | Some p ->
        Hashtbl.replace counts p.Packet.flow
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts p.Packet.flow))
    | None -> ()
  done;
  let c0 = Option.value ~default:0 (Hashtbl.find_opt counts 0) in
  let c1 = Option.value ~default:0 (Hashtbl.find_opt counts 1) in
  Alcotest.(check int) "equal service" c0 c1

let test_drr_weights () =
  let q =
    Net.Drr.create ~quantum_bytes:1000 ~limit_bytes:1_000_000
      ~weight_of_flow:(fun f -> if f = 0 then 3.0 else 1.0)
      ()
  in
  for i = 0 to 199 do
    ignore (q.Net.Qdisc.enqueue (data ~flow:0 ~seq:i ~size:1000 ()));
    ignore (q.Net.Qdisc.enqueue (data ~flow:1 ~seq:i ~size:1000 ()))
  done;
  let c0 = ref 0 and c1 = ref 0 in
  for _ = 1 to 120 do
    match q.Net.Qdisc.dequeue () with
    | Some p -> if p.Packet.flow = 0 then incr c0 else incr c1
    | None -> ()
  done;
  (* Expect roughly 3:1 service. *)
  Alcotest.(check bool) "weighted service"
    true
    (!c0 > 2 * !c1)

let test_drr_longest_queue_drop () =
  let q = Net.Drr.create ~quantum_bytes:1000 ~limit_bytes:5000 () in
  (* Flow 0 fills the buffer; flow 1's arrival should displace flow 0. *)
  for i = 0 to 4 do
    ignore (q.Net.Qdisc.enqueue (data ~flow:0 ~seq:i ~size:1000 ()))
  done;
  Alcotest.(check bool) "newcomer admitted" true (q.Net.Qdisc.enqueue (data ~flow:1 ~size:1000 ()));
  Alcotest.(check int) "one drop from the hog" 1 q.Net.Qdisc.stats.dropped

(* --- Token bucket ---------------------------------------------------------------- *)

let test_token_bucket_conformance () =
  let tb = Net.Token_bucket.create ~rate_bps:8000.0 ~burst_bytes:1000 ~now:0.0 in
  (* Bucket starts full: 1000 bytes pass. *)
  Alcotest.(check bool) "burst passes" true (Net.Token_bucket.try_consume tb ~now:0.0 ~bytes:1000);
  Alcotest.(check bool) "empty rejects" false (Net.Token_bucket.try_consume tb ~now:0.0 ~bytes:100);
  (* 8000 bit/s = 1000 B/s; after 0.5 s there are 500 bytes. *)
  Alcotest.(check bool) "refilled" true (Net.Token_bucket.try_consume tb ~now:0.5 ~bytes:500)

let test_token_bucket_cap () =
  let tb = Net.Token_bucket.create ~rate_bps:8000.0 ~burst_bytes:1000 ~now:0.0 in
  ignore (Net.Token_bucket.try_consume tb ~now:0.0 ~bytes:1000);
  (* Long idle: tokens cap at the burst size. *)
  check_float "capped" 1000.0 (Net.Token_bucket.tokens tb ~now:100.0)

let test_token_bucket_wait_time () =
  let tb = Net.Token_bucket.create ~rate_bps:8000.0 ~burst_bytes:1000 ~now:0.0 in
  ignore (Net.Token_bucket.try_consume tb ~now:0.0 ~bytes:1000);
  check_float "wait for 250 bytes" 0.25
    (Net.Token_bucket.time_until_available tb ~now:0.0 ~bytes:250);
  Alcotest.check_raises "oversized request"
    (Invalid_argument "Token_bucket.time_until_available: request exceeds burst size") (fun () ->
      ignore (Net.Token_bucket.time_until_available tb ~now:0.0 ~bytes:2000))

(* --- Shaper / Policer ---------------------------------------------------------------- *)

let test_shaper_limits_rate () =
  let sim = Sim.create () in
  let received = ref 0 in
  let shaper =
    Net.Shaper.create sim ~rate_bps:80_000.0 (* 10 kB/s *) ~burst_bytes:1000
      ~limit_bytes:1_000_000
      ~sink:(fun pkt -> received := !received + pkt.Packet.size_bytes)
      ()
  in
  (* Offer 50 kB instantly; after 2 s only burst + 2 s x 10 kB/s should
     have passed. *)
  for i = 0 to 49 do
    Net.Shaper.input shaper (data ~seq:i ~size:1000 ())
  done;
  Sim.run ~until:2.0 sim;
  Alcotest.(check bool) "rate enforced" true (!received <= 21_100 && !received >= 19_000);
  Sim.run ~until:10.0 sim;
  Alcotest.(check int) "eventually all delivered" 50_000 !received;
  Alcotest.(check int) "nothing dropped" 0 (Net.Shaper.dropped shaper)

let test_shaper_drops_over_limit () =
  let sim = Sim.create () in
  let shaper =
    Net.Shaper.create sim ~rate_bps:8_000.0 ~burst_bytes:500 ~limit_bytes:2000
      ~sink:(fun _ -> ())
      ()
  in
  for i = 0 to 9 do
    Net.Shaper.input shaper (data ~seq:i ~size:1000 ())
  done;
  Alcotest.(check bool) "drops beyond queue limit" true (Net.Shaper.dropped shaper > 0)

let test_policer_drops_excess () =
  let sim = Sim.create () in
  let passed = ref 0 in
  let policer =
    Net.Policer.create sim ~rate_bps:80_000.0 ~burst_bytes:2000
      ~sink:(fun _ -> incr passed)
      ()
  in
  for i = 0 to 9 do
    Net.Policer.input policer (data ~seq:i ~size:1000 ())
  done;
  Alcotest.(check int) "burst passes" 2 !passed;
  Alcotest.(check int) "rest dropped" 8 (Net.Policer.dropped policer)

(* --- Red / Codel / Prio ----------------------------------------------------------------- *)

let test_red_accepts_below_min_th () =
  let q = Net.Red.create ~min_th_bytes:10_000 ~max_th_bytes:30_000 ~limit_bytes:100_000 () in
  for i = 0 to 4 do
    Alcotest.(check bool) "below threshold admitted" true (q.Net.Qdisc.enqueue (data ~seq:i ()))
  done

let test_red_drops_under_pressure () =
  let q = Net.Red.create ~min_th_bytes:2_000 ~max_th_bytes:10_000 ~max_p:0.5 ~weight:0.5
      ~limit_bytes:50_000 ()
  in
  for i = 0 to 199 do
    ignore (q.Net.Qdisc.enqueue (data ~seq:i ()))
  done;
  Alcotest.(check bool) "probabilistic drops occurred" true (q.Net.Qdisc.stats.dropped > 0);
  Alcotest.(check bool) "but not everything" true (q.Net.Qdisc.stats.enqueued > 0)

let test_red_ecn_marks () =
  let q =
    Net.Red.create ~min_th_bytes:1_000 ~max_th_bytes:5_000 ~max_p:1.0 ~weight:1.0 ~ecn:true
      ~limit_bytes:50_000 ()
  in
  for i = 0 to 49 do
    ignore (q.Net.Qdisc.enqueue (data ~seq:i ()))
  done;
  Alcotest.(check bool) "marked instead of dropped" true (q.Net.Qdisc.stats.ecn_marked > 0);
  Alcotest.(check int) "no drops below hard limit" 0 q.Net.Qdisc.stats.dropped

let test_codel_passes_when_fast () =
  let now = ref 0.0 in
  let q = Net.Codel.create ~now:(fun () -> !now) () in
  ignore (q.Net.Qdisc.enqueue (data ()));
  now := 0.001;
  (match q.Net.Qdisc.dequeue () with
  | Some _ -> ()
  | None -> Alcotest.fail "packet should pass");
  Alcotest.(check int) "no drops" 0 q.Net.Qdisc.stats.dropped

let test_codel_drops_standing_queue () =
  let now = ref 0.0 in
  let q = Net.Codel.create ~now:(fun () -> !now) ~target:0.005 ~interval:0.1 () in
  (* Feed a standing queue: every dequeued packet has sojourned 50 ms. *)
  let dropped_before = q.Net.Qdisc.stats.dropped in
  for round = 0 to 99 do
    ignore (q.Net.Qdisc.enqueue (data ~seq:round ()));
    ignore (q.Net.Qdisc.enqueue (data ~seq:(1000 + round) ()));
    now := !now +. 0.05;
    ignore (q.Net.Qdisc.dequeue ())
  done;
  Alcotest.(check bool) "codel dropped from standing queue" true
    (q.Net.Qdisc.stats.dropped > dropped_before)

let test_prio_strict_order () =
  let q = Net.Prio.create ~bands:3 () in
  let mk prio seq = Packet.data ~flow:0 ~seq ~payload_bytes:100 ~prio ~sent_at:0.0 () in
  ignore (q.Net.Qdisc.enqueue (mk 2 1));
  ignore (q.Net.Qdisc.enqueue (mk 0 2));
  ignore (q.Net.Qdisc.enqueue (mk 1 3));
  let pop () = match q.Net.Qdisc.dequeue () with Some p -> p.Packet.seq | None -> -1 in
  let a = pop () in
  let b = pop () in
  let c = pop () in
  Alcotest.(check (list int)) "priority order" [ 2; 3; 1 ] [ a; b; c ]

(* --- Link -------------------------------------------------------------------------- *)

let test_link_serialization_and_delay () =
  let sim = Sim.create () in
  let arrivals = ref [] in
  let link =
    Net.Link.create sim ~rate_bps:8_000.0 (* 1000 B/s *) ~delay_s:0.5
      ~sink:(fun pkt -> arrivals := (Sim.now sim, pkt.Packet.seq) :: !arrivals)
      ()
  in
  Net.Link.send link (data ~seq:1 ~size:1000 ());
  Net.Link.send link (data ~seq:2 ~size:1000 ());
  Sim.run sim;
  (* First packet: 1 s serialization + 0.5 s propagation = 1.5 s.
     Second: starts serializing at 1 s, arrives 2.5 s. *)
  Alcotest.(check (list (pair (float 1e-9) int)))
    "timing" [ (1.5, 1); (2.5, 2) ] (List.rev !arrivals)

let test_link_utilization () =
  let sim = Sim.create () in
  let link = Net.Link.create sim ~rate_bps:8_000.0 ~delay_s:0.0 ~sink:(fun _ -> ()) () in
  Net.Link.send link (data ~size:1000 ());
  Sim.run ~until:2.0 sim;
  check_float "busy half the time" 0.5 (Net.Link.utilization link ~now:2.0);
  Alcotest.(check int) "delivered" 1000 (Net.Link.bytes_delivered link)

let test_link_rate_change () =
  let sim = Sim.create () in
  let arrivals = ref [] in
  let link =
    Net.Link.create sim ~rate_bps:8_000.0 ~delay_s:0.0
      ~sink:(fun pkt -> arrivals := (Sim.now sim, pkt.Packet.seq) :: !arrivals)
      ()
  in
  Net.Link.send link (data ~seq:1 ~size:1000 ());
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         Net.Link.set_rate link 16_000.0;
         Net.Link.send link (data ~seq:2 ~size:1000 ())));
  Sim.run sim;
  Alcotest.(check (list (pair (float 1e-9) int)))
    "second packet at doubled rate" [ (1.0, 1); (1.5, 2) ] (List.rev !arrivals)

(* --- Dispatch ------------------------------------------------------------------------ *)

let test_dispatch_routes_by_flow () =
  let d = Net.Dispatch.create () in
  let got = ref [] in
  Net.Dispatch.register d ~flow:1 (fun pkt -> got := (1, pkt.Packet.seq) :: !got);
  Net.Dispatch.register d ~flow:2 (fun pkt -> got := (2, pkt.Packet.seq) :: !got);
  Net.Dispatch.deliver d (data ~flow:2 ~seq:7 ());
  Net.Dispatch.deliver d (data ~flow:1 ~seq:9 ());
  Net.Dispatch.deliver d (data ~flow:3 ~seq:0 ());
  Alcotest.(check (list (pair int int))) "routed" [ (2, 7); (1, 9) ] (List.rev !got);
  Alcotest.(check int) "unmatched counted" 1 (Net.Dispatch.unmatched d)

let test_dispatch_double_register_rejected () =
  let d = Net.Dispatch.create () in
  Net.Dispatch.register d ~flow:1 (fun _ -> ());
  Alcotest.check_raises "duplicate flow"
    (Invalid_argument "Dispatch.register: flow already registered") (fun () ->
      Net.Dispatch.register d ~flow:1 (fun _ -> ()))

(* --- Topology ---------------------------------------------------------------------------- *)

let test_topology_end_to_end_delivery () =
  let sim = Sim.create () in
  let topo = Net.Topology.dumbbell sim ~rate_bps:1e6 ~delay_s:0.01 () in
  let got = ref 0 in
  Net.Dispatch.register topo.fwd_dispatch ~flow:0 (fun _ -> incr got);
  (topo.fwd_entry ~flow:0) (data ~flow:0 ());
  Sim.run sim;
  Alcotest.(check int) "delivered through dumbbell" 1 !got

let test_topology_rtt () =
  check_float "base rtt" 0.07
    (let sim = Sim.create () in
     let topo =
       Net.Topology.dumbbell sim ~rate_bps:1e6 ~delay_s:0.03 ~edge_delay:(fun _ -> 0.005) ()
     in
     Net.Topology.base_rtt topo ~flow:0)

let test_topology_policer_ingress () =
  let sim = Sim.create () in
  let topo =
    Net.Topology.dumbbell sim ~rate_bps:1e7 ~delay_s:0.001
      ~ingress:(fun _ -> Net.Topology.Police { rate_bps = 80_000.0; burst_bytes = 2000 })
      ()
  in
  let got = ref 0 in
  Net.Dispatch.register topo.fwd_dispatch ~flow:0 (fun _ -> incr got);
  for i = 0 to 9 do
    (topo.fwd_entry ~flow:0) (data ~flow:0 ~seq:i ~size:1000 ())
  done;
  Sim.run sim;
  Alcotest.(check int) "only the burst passes the policer" 2 !got

let suite =
  [
    ("packet: unique uids", `Quick, test_packet_uids_unique);
    ("packet: sizes and kinds", `Quick, test_packet_sizes);
    ("fifo: order and backlog", `Quick, test_fifo_order_and_backlog);
    ("fifo: drop tail", `Quick, test_fifo_drop_tail);
    ("fifo: packet limit", `Quick, test_fifo_packet_limit);
    ("drr: round robin", `Quick, test_drr_round_robin);
    ("drr: equal byte service", `Quick, test_drr_fair_bytes);
    ("drr: weighted service", `Quick, test_drr_weights);
    ("drr: longest-queue drop", `Quick, test_drr_longest_queue_drop);
    ("token bucket: conformance", `Quick, test_token_bucket_conformance);
    ("token bucket: burst cap", `Quick, test_token_bucket_cap);
    ("token bucket: wait time", `Quick, test_token_bucket_wait_time);
    ("shaper: enforces rate then delivers all", `Quick, test_shaper_limits_rate);
    ("shaper: drops over queue limit", `Quick, test_shaper_drops_over_limit);
    ("policer: drops excess", `Quick, test_policer_drops_excess);
    ("red: below min threshold", `Quick, test_red_accepts_below_min_th);
    ("red: drops under pressure", `Quick, test_red_drops_under_pressure);
    ("red: ecn marking", `Quick, test_red_ecn_marks);
    ("codel: fast queue untouched", `Quick, test_codel_passes_when_fast);
    ("codel: standing queue dropped", `Quick, test_codel_drops_standing_queue);
    ("prio: strict ordering", `Quick, test_prio_strict_order);
    ("link: serialization + propagation", `Quick, test_link_serialization_and_delay);
    ("link: utilization accounting", `Quick, test_link_utilization);
    ("link: mid-run rate change", `Quick, test_link_rate_change);
    ("dispatch: routes by flow", `Quick, test_dispatch_routes_by_flow);
    ("dispatch: duplicate rejected", `Quick, test_dispatch_double_register_rejected);
    ("topology: end-to-end delivery", `Quick, test_topology_end_to_end_delivery);
    ("topology: base rtt", `Quick, test_topology_rtt);
    ("topology: policer ingress", `Quick, test_topology_policer_ingress);
  ]
