(* Tests for the application-traffic layer. *)

module Sim = Ccsim_engine.Sim
module Net = Ccsim_net
module Tcp = Ccsim_tcp
module App = Ccsim_app
module U = Ccsim_util

let make_topo ?(rate = 50e6) ?(delay = 0.01) sim =
  Net.Topology.dumbbell sim ~rate_bps:rate ~delay_s:delay ()

let establish ?(flow = 0) ?(cca = Ccsim_cca.Cubic.create ()) topo =
  Tcp.Connection.establish topo ~flow ~cca ()

(* --- Bulk --------------------------------------------------------------------- *)

let test_bulk_starts_at_time () =
  let sim = Sim.create () in
  let topo = make_topo sim in
  let conn = establish topo in
  let app = App.Bulk.start sim ~sender:conn.sender ~at:2.0 () in
  Sim.run ~until:1.0 sim;
  Alcotest.(check bool) "not yet" false (App.Bulk.started app);
  Alcotest.(check int) "nothing sent" 0 (Tcp.Sender.bytes_acked conn.sender);
  Sim.run ~until:5.0 sim;
  Alcotest.(check bool) "started" true (App.Bulk.started app);
  Alcotest.(check bool) "data flowing" true (Tcp.Sender.bytes_acked conn.sender > 0)

let test_bulk_stop_closes () =
  let sim = Sim.create () in
  let topo = make_topo sim in
  let conn = establish topo in
  ignore (App.Bulk.start sim ~sender:conn.sender ~stop_at:1.0 ());
  Sim.run ~until:1.5 sim;
  let at_stop = Tcp.Sender.bytes_acked conn.sender in
  Sim.run ~until:5.0 sim;
  (* Only in-flight data drains after close. *)
  Alcotest.(check bool) "sending stopped" true
    (Tcp.Sender.bytes_acked conn.sender - at_stop < 2_000_000)

(* --- Cbr ----------------------------------------------------------------------- *)

let test_cbr_tcp_rate () =
  let sim = Sim.create () in
  let topo = make_topo sim in
  let conn = establish topo in
  let cbr = App.Cbr.over_tcp sim ~sender:conn.sender ~rate_bps:8e6 () in
  Sim.run ~until:10.0 sim;
  let offered = float_of_int (App.Cbr.bytes_offered cbr) *. 8.0 /. 10.0 in
  Alcotest.(check bool) "offered ~8 Mbit/s" true (Float.abs (offered -. 8e6) < 0.2e6);
  let acked = float_of_int (Tcp.Sender.bytes_acked conn.sender) *. 8.0 /. 10.0 in
  Alcotest.(check bool) "delivered ~offered" true (Float.abs (acked -. 8e6) < 0.5e6)

let test_cbr_udp_even_spacing () =
  let sim = Sim.create () in
  let topo = make_topo sim in
  let sink = Tcp.Udp.Sink.create sim () in
  Net.Dispatch.register topo.fwd_dispatch ~flow:0 (Tcp.Udp.Sink.handle sink);
  let source = Tcp.Udp.Source.create sim ~flow:0 ~path:(topo.fwd_entry ~flow:0) () in
  (* 1200-byte datagrams fit in one MSS, so arrivals stay evenly spaced
     (a payload above the MSS is split into a bursty packet pair). *)
  ignore (App.Cbr.over_udp sim ~source ~rate_bps:0.96e6 ~packet_bytes:1200 ~stop:5.0 ());
  Sim.run ~until:6.0 sim;
  (* 0.96e6 / (1200*8) = 100 packets/s for 5 s. *)
  Alcotest.(check bool) "packet count ~500" true
    (abs (Tcp.Udp.Sink.packets_received sink - 500) <= 2);
  Alcotest.(check bool) "low jitter" true (Tcp.Udp.Sink.interarrival_jitter sink < 1e-3)

(* --- Onoff ------------------------------------------------------------------------ *)

let test_onoff_duty_cycle () =
  let sim = Sim.create () in
  let topo = make_topo sim in
  let conn = establish topo in
  let rng = U.Rng.create 42 in
  let app =
    App.Onoff.start sim ~sender:conn.sender ~rng ~rate_bps:8e6 ~mean_on:0.5 ~mean_off:0.5 ()
  in
  Sim.run ~until:60.0 sim;
  (* 50% duty cycle: offered ~ 4 Mbit/s over the run. *)
  let offered = float_of_int (App.Onoff.bytes_offered app) *. 8.0 /. 60.0 in
  Alcotest.(check bool) "mean rate near half" true (offered > 2.5e6 && offered < 5.5e6);
  let frac = App.Onoff.on_fraction app in
  Alcotest.(check bool) "on fraction near 0.5" true (frac > 0.3 && frac < 0.7)

(* --- Poisson short flows ------------------------------------------------------------- *)

let test_poisson_arrival_rate () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:100e6 sim in
  let rng = U.Rng.create 1 in
  let app =
    App.Poisson_flows.start sim topo ~rng ~arrival_rate:20.0 ~mean_size_bytes:20_000.0
      ~stop:10.0 ()
  in
  Sim.run ~until:15.0 sim;
  let n = App.Poisson_flows.spawn_count app in
  Alcotest.(check bool) "spawned ~200 flows" true (n > 140 && n < 270)

let test_poisson_flows_complete () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:100e6 sim in
  let rng = U.Rng.create 2 in
  let app =
    App.Poisson_flows.start sim topo ~rng ~arrival_rate:10.0 ~mean_size_bytes:20_000.0
      ~stop:5.0 ()
  in
  Sim.run ~until:30.0 sim;
  let completed = List.length (App.Poisson_flows.completed app) in
  Alcotest.(check int) "all spawned flows complete" (App.Poisson_flows.spawn_count app)
    completed

let test_poisson_iw_fraction_sane () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:100e6 sim in
  let rng = U.Rng.create 3 in
  let app =
    App.Poisson_flows.start sim topo ~rng ~arrival_rate:20.0 ~mean_size_bytes:15_000.0
      ~stop:10.0 ()
  in
  Sim.run ~until:30.0 sim;
  (* With a 15 kB mean and IW10 ~ 14.5 kB, most (heavy-tailed) flows fit. *)
  let frac = App.Poisson_flows.fraction_within_initial_window app in
  Alcotest.(check bool) "majority fit in IW" true (frac > 0.5)

let test_poisson_record_consistency () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:100e6 sim in
  let rng = U.Rng.create 4 in
  let app =
    App.Poisson_flows.start sim topo ~rng ~arrival_rate:10.0 ~mean_size_bytes:30_000.0 ~stop:5.0
      ()
  in
  Sim.run ~until:30.0 sim;
  List.iter
    (fun (r : App.Poisson_flows.flow_record) ->
      match r.finished with
      | Some f -> Alcotest.(check bool) "finish after start" true (f >= r.started)
      | None -> Alcotest.fail "unfinished flow after drain time")
    (App.Poisson_flows.flows app)

(* --- Video ----------------------------------------------------------------------------- *)

let test_video_reaches_top_rung_when_capacity_ample () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:100e6 sim in
  let conn = establish topo in
  let video = App.Video.start sim ~sender:conn.sender () in
  Sim.run ~until:60.0 sim;
  let stats = App.Video.stats video in
  Alcotest.(check bool) "several chunks" true (stats.chunks_downloaded > 10);
  Alcotest.(check bool) "mean bitrate near the ladder top" true
    (stats.mean_bitrate_bps > 15e6);
  Alcotest.(check (float 0.5)) "no rebuffering" 0.0 stats.rebuffer_s

let test_video_adapts_down_when_capacity_scarce () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:4e6 sim in
  let conn = establish topo in
  let video = App.Video.start sim ~sender:conn.sender () in
  Sim.run ~until:60.0 sim;
  let stats = App.Video.stats video in
  Alcotest.(check bool) "bitrate below capacity" true (stats.mean_bitrate_bps < 4e6);
  Alcotest.(check bool) "kept playing" true (stats.chunks_downloaded > 10)

let test_video_demand_bounded () =
  (* The §2.2 claim: even with 10x the capacity, the stream's steady
     demand is the ladder top. The startup phase races to fill the
     playback buffer, so measure after it is full. *)
  let sim = Sim.create () in
  let topo = make_topo ~rate:250e6 sim in
  let conn = establish topo in
  ignore (App.Video.start sim ~sender:conn.sender ());
  let acked_at_40 = ref 0 in
  ignore (Sim.schedule_at sim ~time:40.0 (fun () -> acked_at_40 := Tcp.Sender.bytes_acked conn.sender));
  Sim.run ~until:100.0 sim;
  let steady_rate =
    float_of_int (Tcp.Sender.bytes_acked conn.sender - !acked_at_40) *. 8.0 /. 60.0
  in
  Alcotest.(check bool) "steady goodput bounded by the ladder top" true (steady_rate < 30e6)

let test_video_buffer_never_exceeds_max () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:100e6 sim in
  let conn = establish topo in
  let video = App.Video.start sim ~sender:conn.sender ~max_buffer_s:10.0 () in
  Sim.run ~until:60.0 sim;
  let stats = App.Video.stats video in
  (* With a 10 s buffer cap and 2 s chunks, a 60 s session downloads at
     most ~ (60 + 10)/2 + startup chunks. *)
  Alcotest.(check bool) "request pacing respects the buffer cap" true
    (stats.chunks_downloaded <= 38)

(* --- Speedtest ---------------------------------------------------------------------------- *)

let test_speedtest_snapshots () =
  let sim = Sim.create () in
  let topo = make_topo ~rate:20e6 sim in
  let conn = establish topo in
  let finished = ref None in
  ignore
    (App.Speedtest.start sim ~sender:conn.sender ~duration:5.0 ~interval:0.1
       ~on_finish:(fun r -> finished := Some r)
       ());
  Sim.run ~until:6.0 sim;
  match !finished with
  | None -> Alcotest.fail "speedtest did not finish"
  | Some r ->
      Alcotest.(check bool) "about 50 snapshots" true
        (Array.length r.snapshots >= 48 && Array.length r.snapshots <= 52);
      Alcotest.(check bool) "throughput near link rate" true
        (r.mean_throughput_bps > 15e6 && r.mean_throughput_bps < 20e6);
      (* Snapshots are monotone in time and bytes. *)
      Array.iteri
        (fun i (s : Tcp.Tcp_info.t) ->
          if i > 0 then begin
            Alcotest.(check bool) "time monotone" true (s.at > r.snapshots.(i - 1).at);
            Alcotest.(check bool) "bytes monotone" true
              (s.bytes_acked >= r.snapshots.(i - 1).bytes_acked)
          end)
        r.snapshots

let suite =
  [
    ("bulk: delayed start", `Quick, test_bulk_starts_at_time);
    ("bulk: stop closes the sender", `Quick, test_bulk_stop_closes);
    ("cbr/tcp: holds the configured rate", `Quick, test_cbr_tcp_rate);
    ("cbr/udp: even spacing", `Quick, test_cbr_udp_even_spacing);
    ("onoff: duty cycle", `Quick, test_onoff_duty_cycle);
    ("poisson: arrival rate", `Quick, test_poisson_arrival_rate);
    ("poisson: flows complete", `Quick, test_poisson_flows_complete);
    ("poisson: IW fraction sane", `Quick, test_poisson_iw_fraction_sane);
    ("poisson: record consistency", `Quick, test_poisson_record_consistency);
    ("video: top rung with ample capacity", `Quick, test_video_reaches_top_rung_when_capacity_ample);
    ("video: adapts down under scarcity", `Quick, test_video_adapts_down_when_capacity_scarce);
    ("video: demand bounded", `Quick, test_video_demand_bounded);
    ("video: buffer cap respected", `Quick, test_video_buffer_never_exceeds_max);
    ("speedtest: snapshots and rate", `Quick, test_speedtest_snapshots);
  ]
