(* Quickstart: two bulk flows with different CCAs share a bottleneck.

   Run with: dune exec examples/quickstart.exe

   This uses only the high-level Scenario API: describe the bottleneck,
   list the flows, run, read per-flow results. *)

module Scenario = Ccsim_core.Scenario
module Results = Ccsim_core.Results
module U = Ccsim_util

let () =
  let scenario =
    Scenario.make ~name:"quickstart" ~rate_bps:(U.Units.mbps 48.0) ~delay_s:0.025
      ~duration:30.0 ~warmup:5.0
      [
        Scenario.flow "cubic" ~cca:Scenario.Cubic ~app:Scenario.Bulk;
        Scenario.flow "reno" ~cca:Scenario.Reno ~app:Scenario.Bulk;
      ]
  in
  let result = Scenario.run scenario in
  Format.printf "%a@." Results.pp_summary result;
  let cubic = Results.find result "cubic" and reno = Results.find result "reno" in
  Format.printf "cubic/reno goodput ratio: %.2f@."
    (cubic.goodput_bps /. reno.goodput_bps);
  Format.printf
    "Try swapping the FIFO for fair queueing (~qdisc:(Drr ...)) and watch the ratio go to 1.@."
