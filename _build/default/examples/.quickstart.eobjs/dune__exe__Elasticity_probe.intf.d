examples/elasticity_probe.mli:
