examples/mlab_pipeline.mli:
