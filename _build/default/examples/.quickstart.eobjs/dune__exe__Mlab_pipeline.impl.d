examples/mlab_pipeline.ml: Ccsim_core Ccsim_engine Ccsim_measure Ccsim_util Format List Option Printf
