examples/quickstart.ml: Ccsim_core Ccsim_util Format
