examples/access_link.ml: Ccsim_core Ccsim_net Ccsim_util Option Printf
