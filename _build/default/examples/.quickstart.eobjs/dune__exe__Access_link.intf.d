examples/access_link.mli:
