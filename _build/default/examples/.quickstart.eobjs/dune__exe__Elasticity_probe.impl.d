examples/elasticity_probe.ml: Ccsim_cca Ccsim_engine Ccsim_measure Ccsim_net Ccsim_tcp Ccsim_util List Printf
