examples/quickstart.mli:
