(* Using Nimbus as a measurement instrument (the paper's §3.2 proposal):
   point a pulsing probe at a path and ask "is anything on this path
   actively competing with me for bandwidth?"

   Run with: dune exec examples/elasticity_probe.exe

   The example dissects one case from Figure 3 — a Reno bulk flow as
   cross traffic — and prints the probe's elasticity time series, the
   kind of evidence the paper proposes collecting Internet-wide. *)

module Sim = Ccsim_engine.Sim
module U = Ccsim_util

let () =
  let rate_bps = U.Units.mbps 48.0 in
  let sim = Sim.create () in
  let bdp = U.Units.bdp_bytes ~rate_bps ~rtt_s:0.1 in
  let topo =
    Ccsim_net.Topology.dumbbell sim ~rate_bps ~delay_s:0.05
      ~qdisc:(Ccsim_net.Fifo.create ~limit_bytes:(2 * bdp) ())
      ()
  in
  (* The probe: Nimbus with mode switching disabled, capacity known. *)
  let probe_cca, handle =
    Ccsim_cca.Nimbus.create sim ~mode_switching:false ~known_capacity_bps:rate_bps ()
  in
  let probe = Ccsim_tcp.Connection.establish topo ~flow:0 ~cca:probe_cca () in
  Ccsim_tcp.Sender.set_unlimited probe.sender;
  (* Cross traffic: a Reno bulk flow that joins at t=15s and leaves at t=35s. *)
  let cross = Ccsim_tcp.Connection.establish topo ~flow:1 ~cca:(Ccsim_cca.Reno.create ()) () in
  ignore (Sim.schedule_at sim ~time:15.0 (fun () -> Ccsim_tcp.Sender.set_unlimited cross.sender));
  ignore (Sim.schedule_at sim ~time:35.0 (fun () -> Ccsim_tcp.Sender.close cross.sender));
  Sim.run ~until:50.0 sim;
  print_endline "Elasticity time series (Reno cross traffic active from t=15s to t=35s):";
  print_endline "  time   elasticity  verdict";
  List.iter
    (fun (time, e) ->
      if time > 6.0 then
        Printf.printf "  %5.1f  %10.2f  %s\n" time e
          (match Ccsim_measure.Elasticity.classify e with
          | `Elastic -> "contending"
          | `Inelastic -> "-"))
    (U.Timeseries.to_list handle.elasticity)
