(* A realistic home access link: ABR video + a software update (bulk) +
   web browsing (Poisson short flows), under FIFO and under fair
   queueing, with and without an ISP shaper.

   Run with: dune exec examples/access_link.exe

   This is the scenario the paper's §2.2 reasons about: does the bulk
   download actually contend with the video, or does ABR demand-bounding
   plus isolation make CCA dynamics irrelevant? *)

module Scenario = Ccsim_core.Scenario
module Results = Ccsim_core.Results
module U = Ccsim_util

let describe label result =
  let video = Results.find result "video" in
  let bulk = Results.find result "update" in
  let video_stats = Option.get video.Results.video in
  Printf.printf "%-28s video %5.2f Mbit/s (rebuffer %4.1fs)  update %5.2f Mbit/s  util %.2f\n"
    label
    (U.Units.to_mbps video.goodput_bps)
    video_stats.rebuffer_s
    (U.Units.to_mbps bulk.goodput_bps)
    result.Results.utilization

let run ~label ~qdisc ~ingress =
  let scenario =
    Scenario.make ~name:label ~rate_bps:(U.Units.mbps 40.0) ~delay_s:0.015 ~qdisc
      ~duration:60.0 ~warmup:15.0
      ~short_flows:{ Scenario.arrival_rate = 5.0; mean_size_bytes = 50_000.0; sf_stop = None }
      [
        Scenario.flow "video" ~cca:Scenario.Cubic ~app:(Scenario.Video { ladder_bps = None });
        Scenario.flow "update" ~cca:Scenario.Cubic ~app:Scenario.Bulk ~start:10.0 ~ingress;
      ]
  in
  describe label (Scenario.run scenario)

let () =
  print_endline "Home access link (40 Mbit/s): ABR video vs software update vs short flows";
  let fifo = Scenario.Fifo { limit_bytes = None } in
  let drr = Scenario.Drr { quantum_bytes = None; limit_bytes = None } in
  let shaper =
    Ccsim_net.Topology.Shape
      {
        rate_bps = U.Units.mbps 20.0;
        burst_bytes = 50 * (U.Units.mss + U.Units.header_bytes);
      }
  in
  run ~label:"fifo, unshaped" ~qdisc:fifo ~ingress:Ccsim_net.Topology.No_ingress;
  run ~label:"fifo, update shaped to 20M" ~qdisc:fifo ~ingress:shaper;
  run ~label:"drr fair queueing, unshaped" ~qdisc:drr ~ingress:Ccsim_net.Topology.No_ingress
