(* The §3.1 M-Lab pipeline end to end, twice:

   1. over the synthetic labelled NDT population (as `ccsim fig2`), and
   2. over NDT records produced by *actually simulating* speedtest flows
      through contended and uncontended paths — showing that the same
      analysis code runs on simulator output and that the TCPInfo
      accounting (AppLimited / RWndLimited) drives categorization.

   Run with: dune exec examples/mlab_pipeline.exe *)

module Scenario = Ccsim_core.Scenario
module Results = Ccsim_core.Results
module M = Ccsim_measure
module U = Ccsim_util

(* Simulate one NDT speedtest under the given conditions and convert the
   snapshots to an NDT record. *)
let simulated_ndt ~id ~label ~flows ~gt =
  let scenario =
    Scenario.make ~name:label ~rate_bps:(U.Units.mbps 50.0) ~delay_s:0.02 ~duration:14.0
      ~warmup:1.0 ~seed:(1000 + id)
      (Scenario.flow "ndt" ~cca:Scenario.Cubic ~app:(Scenario.Speedtest { duration = 10.0 })
       :: flows)
  in
  let result = Scenario.run scenario in
  let ndt_flow = Results.find result "ndt" in
  match ndt_flow.speedtest with
  | None -> None
  | Some st ->
      Option.map
        (fun r -> M.Ndt.with_ground_truth r gt)
        (M.Ndt.of_speedtest ~id ~access:M.Ndt.Fixed st.snapshots)

let () =
  (* Part 1: the paper-scale synthetic population. *)
  let rng = U.Rng.create 7 in
  let records = M.Ndt.generate ~rng ~n:3000 () in
  let report = M.Mlab_analysis.analyze records in
  Format.printf "Synthetic population: %a@.@." M.Mlab_analysis.pp_report report;
  (* Part 2: records from simulated speedtests. *)
  let cases =
    [
      ("uncontended", [], M.Ndt.Gt_clean_bulk);
      ( "app-limited cross traffic",
        [
          Scenario.flow "cbr"
            ~app:(Scenario.Cbr_tcp { rate_bps = U.Units.mbps 8.0 })
            ~cca:Scenario.Reno;
        ],
        M.Ndt.Gt_clean_bulk );
      ( "contended (bulk joins mid-test)",
        [ Scenario.flow "bulk" ~cca:Scenario.Cubic ~app:Scenario.Bulk ~start:4.0 ],
        M.Ndt.Gt_contended 1 );
    ]
  in
  print_endline "Simulated speedtests through the packet-level simulator:";
  List.iteri
    (fun id (label, flows, gt) ->
      match simulated_ndt ~id ~label ~flows ~gt with
      | None -> Printf.printf "  %-34s (no snapshots)\n" label
      | Some record ->
          let verdict = M.Mlab_analysis.analyze_record record in
          Printf.printf "  %-34s mean %5.1f Mbit/s  changes=%d  shift=%4.1f M  verdict: %s\n"
            label record.mean_throughput_mbps
            (List.length verdict.change_points)
            verdict.largest_shift_mbps
            (if verdict.contention_consistent then "contention-consistent"
             else "no contention signal"))
    cases
