(* ccsim-lint CLI: scan the given files/directories and fail on any
   finding that is neither annotated inline nor covered by a reviewed
   allowlist entry. Exit codes: 0 clean, 1 findings (or a stale or
   malformed allowlist), 2 usage/scan errors.

   Two stages share one finding stream, one allowlist, and one exit
   code: the parsetree pass (R1-R4) always runs over the sources; the
   typed pass (R5-R7) runs when at least one --cmt-root is given and
   covers every compiled unit whose recorded source path falls under a
   scanned PATH. *)

let usage () =
  prerr_endline
    "usage: ccsim_lint [--json] [--sarif OUT.json] [--allow FILE] [--cmt-root DIR]... PATH...\n\
     \n\
     Scans every .ml under each PATH for determinism and data-race\n\
     hazards (rules R1-R4) and, when --cmt-root is given, runs the\n\
     typed stage (R5 no-alloc-in-hot, R6 no-polymorphic-compare,\n\
     R7 unit inference) over the .cmt files found there whose source\n\
     path falls under a PATH. See tools/lint/RULES.md.\n\
     \n\
     \  --json           print findings as a JSON array on stdout\n\
     \  --sarif OUT.json also write findings as SARIF 2.1.0 to OUT.json\n\
     \  --allow FILE     reviewed exceptions (default: no allowlist)\n\
     \  --cmt-root DIR   directory to search for .cmt files (repeatable)\n\
     \  --source-root DIR extra prefix when resolving sources for\n\
     \                   comment-form suppression (repeatable, default .)";
  exit 2

let () =
  let json = ref false in
  let sarif_out = ref None in
  let allow_file = ref None in
  let cmt_roots = ref [] in
  let source_roots = ref [] in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--sarif" :: out :: rest ->
        sarif_out := Some out;
        parse rest
    | "--allow" :: file :: rest ->
        allow_file := Some file;
        parse rest
    | "--cmt-root" :: dir :: rest ->
        cmt_roots := dir :: !cmt_roots;
        parse rest
    | "--source-root" :: dir :: rest ->
        source_roots := dir :: !source_roots;
        parse rest
    | ("--help" | "-h" | "--allow" | "--sarif" | "--cmt-root" | "--source-root") :: _ ->
        usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "ccsim_lint: unknown option %s\n" arg;
        usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !paths with [] -> usage () | _ -> ());
  let paths = List.rev !paths in
  match
    let entries =
      match !allow_file with None -> [] | Some f -> Lint_core.load_allowlist f
    in
    let parse_findings = Lint_core.scan_paths paths in
    let typed_findings =
      match List.rev !cmt_roots with
      | [] -> []
      | cmt_roots ->
          let source_roots =
            match List.rev !source_roots with [] -> [ "." ] | roots -> roots
          in
          Lint_typed.scan ~source_roots ~cmt_roots ~paths ()
    in
    let findings =
      List.sort Lint_core.compare_finding (parse_findings @ typed_findings)
    in
    Lint_core.apply_allowlist entries findings
  with
  | exception Lint_core.Malformed_allow msg ->
      Printf.eprintf "ccsim_lint: malformed allowlist: %s\n" msg;
      exit 1
  | exception Lint_core.Scan_error msg ->
      Printf.eprintf "ccsim_lint: %s\n" msg;
      exit 2
  | findings, stale ->
      if !json then print_string (Lint_core.render_json findings)
      else List.iter (fun f -> print_endline (Lint_core.render_finding f)) findings;
      (match !sarif_out with
      | None -> ()
      | Some out ->
          let oc = open_out out in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc (Lint_core.render_sarif findings)));
      List.iter
        (fun (e : Lint_core.allow_entry) ->
          Printf.eprintf
            "ccsim_lint: stale allowlist entry (line %d): %s %s matches no finding -- delete it\n"
            e.a_line e.a_rule e.a_path)
        stale;
      let has_findings = match findings with [] -> false | _ -> true in
      let has_stale = match stale with [] -> false | _ -> true in
      if has_findings then
        Printf.eprintf "ccsim_lint: %d finding(s); fix them or add a justified lint.allow entry\n"
          (List.length findings);
      exit (if has_findings || has_stale then 1 else 0)
