(* ccsim-lint CLI: scan the given files/directories and fail on any
   finding that is neither annotated inline nor covered by a reviewed
   allowlist entry. Exit codes: 0 clean, 1 findings (or a stale or
   malformed allowlist), 2 usage/scan errors. *)

let usage () =
  prerr_endline
    "usage: ccsim_lint [--json] [--allow FILE] PATH...\n\
     \n\
     Scans every .ml under each PATH for determinism and data-race\n\
     hazards (rules R1-R4, see tools/lint/RULES.md).\n\
     \n\
     \  --json        print findings as a JSON array on stdout\n\
     \  --allow FILE  reviewed exceptions (default: no allowlist)";
  exit 2

let () =
  let json = ref false in
  let allow_file = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--allow" :: file :: rest ->
        allow_file := Some file;
        parse rest
    | ("--help" | "-h" | "--allow") :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "ccsim_lint: unknown option %s\n" arg;
        usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  match
    let entries =
      match !allow_file with None -> [] | Some f -> Lint_core.load_allowlist f
    in
    let findings = Lint_core.scan_paths (List.rev !paths) in
    Lint_core.apply_allowlist entries findings
  with
  | exception Lint_core.Malformed_allow msg ->
      Printf.eprintf "ccsim_lint: malformed allowlist: %s\n" msg;
      exit 1
  | exception Lint_core.Scan_error msg ->
      Printf.eprintf "ccsim_lint: %s\n" msg;
      exit 2
  | findings, stale ->
      if !json then print_string (Lint_core.render_json findings)
      else List.iter (fun f -> print_endline (Lint_core.render_finding f)) findings;
      List.iter
        (fun (e : Lint_core.allow_entry) ->
          Printf.eprintf
            "ccsim_lint: stale allowlist entry (line %d): %s %s matches no finding -- delete it\n"
            e.a_line e.a_rule e.a_path)
        stale;
      if findings <> [] then
        Printf.eprintf "ccsim_lint: %d finding(s); fix them or add a justified lint.allow entry\n"
          (List.length findings);
      exit (if findings <> [] || stale <> [] then 1 else 0)
