(** ccsim-lint rule engine: the parsetree pass enforcing the
    determinism and data-race catalogue (R1-R4) over simulator sources,
    plus the shared finding/allowlist/suppression/rendering machinery
    used by both analysis stages (the typed stage lives in
    {!Lint_typed}). See tools/lint/RULES.md for the rule catalogue and
    escape hatches. *)

type finding = {
  file : string;  (** normalized, '/'-separated relative path *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler diagnostics *)
  rule : string;  (** "R1" .. "R7" *)
  message : string;
  stage : string;  (** "parse" or "typed" *)
}

val compare_finding : finding -> finding -> int
(** Order by (file, line, col, rule) — the stable output order. *)

type allow_entry = {
  a_rule : string;
  a_path : string;
  a_justification : string;  (** mandatory, human-readable *)
  a_line : int;
}

exception Malformed_allow of string
(** Raised by {!load_allowlist} on an entry without a justification or
    that does not parse as [RULE PATH JUSTIFICATION...]. *)

exception Scan_error of string
(** Raised on unreadable or unparseable input. *)

val load_allowlist : string -> allow_entry list
(** Parse a lint.allow file. A missing file is an empty allowlist;
    blank lines and [#] comments are skipped. *)

val scan_source : file:string -> ?wall_clock_exempt:bool -> string -> finding list
(** Scan one compilation unit given as source text. [file] is used for
    reporting and inline-annotation resolution. *)

val scan_file : string -> finding list
(** Scan one [.ml] file; wall-clock exemption is derived from its path
    (lib/runner and lib/obs may read the host clock). *)

val scan_paths : string list -> finding list
(** Scan every [.ml] under the given files/directories, sorted. *)

val apply_allowlist : allow_entry list -> finding list -> finding list * allow_entry list
(** [(surviving_findings, stale_entries)]: an entry suppresses every
    finding of its rule in its file; entries matching nothing are
    returned as stale so the allowlist cannot rot. *)

val normalize : string -> string
(** Collapse a path to the canonical '/'-separated form used in
    findings and allowlist matching. *)

(** {2 Suppression machinery shared with the typed stage} *)

val rules_of_allow_payload : Parsetree.payload -> string list
(** The R<n> tokens of a [\[@lint.allow R5 R6\]] attribute payload,
    scanned structurally so [R5], [R5 R6] and [(R5, R6)] all parse. *)

val rules_of_allow_attrs : Parsetree.attributes -> string list
(** All rules named by [lint.allow] attributes in the list. *)

val suppressions_of_source : string -> (int * string, unit) Hashtbl.t
(** Comment-form suppressions of a source text: [(line, rule)] is
    present when an inline [(* lint: ... *)] annotation on line [line]
    or [line - 1] suppresses [rule]. *)

(** {2 Rendering} *)

val render_finding : finding -> string
(** [file:line:col [rule] message] *)

val render_json : finding list -> string
(** Machine-readable output for [--json]: a JSON array of objects with
    file/line/col/rule/stage/message fields. *)

val render_sarif : finding list -> string
(** SARIF 2.1.0 log (one run, R1-R7 rule descriptors) for GitHub code
    scanning upload. *)
