(** ccsim-lint typed stage: type-accurate rules (R5 no-alloc-in-hot,
    R6 no-polymorphic-compare, R7 unit inference) over the .cmt files
    dune produces. See tools/lint/RULES.md for semantics and escape
    hatches; findings carry [stage = "typed"]. *)

val scan_structure : file:string -> Typedtree.structure -> Lint_core.finding list
(** Run R5/R6/R7 over one typed implementation. [@lint.allow ...]
    attribute suppression is applied; comment-form and allowlist
    suppression are the caller's (see {!scan}). *)

val scan :
  ?source_roots:string list ->
  cmt_roots:string list ->
  paths:string list ->
  unit ->
  Lint_core.finding list
(** Discover [*.cmt] files under [cmt_roots], keep implementations whose
    recorded source path falls under one of [paths] (leading [..]
    segments ignored on both sides), scan each once, and apply
    comment-form suppressions from the source text when it can be found
    relative to a [source_roots] entry (default [["."]]). Unreadable
    cmt files are skipped silently; the result is sorted and deduped. *)
