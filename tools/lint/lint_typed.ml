(* ccsim-lint typed stage: type-accurate rules over the .cmt files dune
   already produces (compiler-libs Cmt_format + Tast_iterator).

   The parsetree stage (Lint_core) guesses: floats from suffixes,
   units from names, and cannot see allocation at all. This stage loads
   the Typedtree, where every expression carries its instantiated type
   and every record/constructor its runtime representation, and runs:

   R5  no-alloc-in-hot: functions annotated [@ccsim.hot] (and everything
       they syntactically contain) may not allocate -- closures, tuples,
       non-constant constructors, records, polymorphic variants, array
       literals, lazy, partial applications, known-allocating stdlib
       calls, float boxing at field reads/writes. The reviewed escape
       hatch is [@ccsim.alloc_ok "why"] on any expression or binding;
       the justification string is mandatory.
   R6  no-polymorphic-compare: any instantiation of Stdlib.(=) / (<>) /
       compare / min / max / Hashtbl.hash at a type that is not a known
       immediate (int/bool/char/unit) walks memory generically -- slow
       in the DES inner loop, wrong on nan, and allocation-prone via
       closure-passing. Supersedes the R3 float heuristic with real
       types.
   R7  unit inference: scale-free dimensional analysis over {time,
       data, packets}. Dimensions seed from name suffixes (_s/_ms/_us
       -> T, _hz -> 1/T, _bps/_kbps/_mbps/_gbps -> D/T, _bytes -> D,
       _pkts -> P, _frac/_pct/_ratio -> dimensionless) on idents,
       fields, params and let-bindings, then propagate: + and - and
       comparisons require equal dimensions, * and / combine them,
       literals are transparent. Scale prefixes are deliberately
       ignored so correct conversions (x_ms /. 1e3 vs y_s) stay silent.
       Supersedes the R4 suffix heuristic.

   Suppression is shared with the parse stage: [@lint.allow R5 R6]
   attributes (read straight off the typedtree), (* lint: allow ... *)
   comment lines (recovered from the source file when readable), and
   lint.allow entries (applied by the driver). *)

open Typedtree

(* ------------------------------------------------------------------ *)
(* Path classification *)

(* Flatten a path, resolving the stdlib's mangled unit names: both
   Stdlib.List.map and Stdlib__List.map normalize to "List.map";
   Stdlib.ref to "ref". Returns None for paths that do not bottom out
   in Stdlib -- a user-defined `compare` never matches R6. *)
let stdlib_name path =
  let rec components p acc =
    match p with
    | Path.Pident id -> Some (Ident.name id, acc)
    | Path.Pdot (p, field) -> components p (field :: acc)
    | _ -> None
  in
  match components path [] with
  | Some ("Stdlib", rest) -> Some (String.concat "." rest)
  | Some (head, rest)
    when String.length head > 8 && String.equal (String.sub head 0 8) "Stdlib__" ->
      Some (String.concat "." (String.sub head 8 (String.length head - 8) :: rest))
  | _ -> None

let type_to_string ty = Format.asprintf "%a" Printtyp.type_expr ty

(* ------------------------------------------------------------------ *)
(* Attributes *)

let has_attr name (attrs : attributes) =
  List.exists (fun (a : attribute) -> String.equal a.Parsetree.attr_name.txt name) attrs

(* [@ccsim.alloc_ok "why"]: Some (Some why) when present with a string
   payload, Some None when present without one (an error in itself). *)
let alloc_ok_attr (attrs : attributes) =
  List.find_map
    (fun (a : attribute) ->
      if not (String.equal a.Parsetree.attr_name.txt "ccsim.alloc_ok") then None
      else
        match a.Parsetree.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (why, _, _)); _ }, _);
                _;
              };
            ]
          when not (String.equal (String.trim why) "") ->
            Some (Some why)
        | _ -> Some None)
    attrs

(* ------------------------------------------------------------------ *)
(* R7: scale-free dimensional analysis *)

type dim = { dt : int; dd : int; dp : int }  (* time, data, packets exponents *)

let dim_zero = { dt = 0; dd = 0; dp = 0 }
let dim_eq a b = a.dt = b.dt && a.dd = b.dd && a.dp = b.dp
let dim_add a b = { dt = a.dt + b.dt; dd = a.dd + b.dd; dp = a.dp + b.dp }
let dim_sub a b = { dt = a.dt - b.dt; dd = a.dd - b.dd; dp = a.dp - b.dp }

let dim_to_string d =
  if dim_eq d dim_zero then "dimensionless"
  else begin
    let part name e acc = if e = 0 then acc else (name, e) :: acc in
    let parts = part "s" d.dt (part "bytes" d.dd (part "pkts" d.dp [])) in
    let num = List.filter (fun (_, e) -> e > 0) parts in
    let den = List.filter (fun (_, e) -> e < 0) parts in
    let render (n, e) =
      let e = abs e in
      if e = 1 then n else Printf.sprintf "%s^%d" n e
    in
    let num_s = match num with [] -> "1" | _ -> String.concat "*" (List.map render num) in
    match den with
    | [] -> num_s
    | _ -> num_s ^ "/" ^ String.concat "/" (List.map render den)
  end

(* Longest-suffix-first: _pkts and _bps both end in _s and must win. *)
let suffix_dims =
  [
    ("_ratio", dim_zero);
    ("_bytes", { dim_zero with dd = 1 });
    ("_kbps", { dim_zero with dd = 1; dt = -1 });
    ("_mbps", { dim_zero with dd = 1; dt = -1 });
    ("_gbps", { dim_zero with dd = 1; dt = -1 });
    ("_pkts", { dim_zero with dp = 1 });
    ("_frac", dim_zero);
    ("_bps", { dim_zero with dd = 1; dt = -1 });
    ("_pct", dim_zero);
    ("_ms", { dim_zero with dt = 1 });
    ("_us", { dim_zero with dt = 1 });
    ("_hz", { dim_zero with dt = -1 });
    ("_s", { dim_zero with dt = 1 });
  ]

let dim_of_name name =
  List.find_map
    (fun (suf, d) ->
      let nl = String.length name and sl = String.length suf in
      if nl > sl && String.equal (String.sub name (nl - sl) sl) suf then Some d else None)
    suffix_dims

(* Three-valued inference lattice. U_const (literals) is transparent in
   addition and the identity in multiplication; U_unknown poisons * and
   / so an unsuffixed operand never manufactures a dimension. *)
type unit_v = U_unknown | U_const | U_dim of dim

type op_class =
  | Op_add  (* + - +. -. : equal dims required, dim result *)
  | Op_mul  (* * *. : dims combine *)
  | Op_div  (* / /. : dims combine *)
  | Op_cmp  (* comparisons: equal dims required, dimensionless result *)
  | Op_minmax  (* min/max family: equal dims required, same-dim result *)
  | Op_pass  (* negation, abs, float_of_int ...: dimension-preserving *)

let classify_op path =
  match stdlib_name path with
  | Some ("+" | "-" | "+." | "-.") -> Some Op_add
  | Some ("*" | "*.") -> Some Op_mul
  | Some ("/" | "/.") -> Some Op_div
  | Some ("<" | "<=" | ">" | ">=" | "=" | "<>" | "==" | "!=" | "compare"
         | "Float.compare" | "Float.equal" | "Int.compare" | "Int.equal") ->
      Some Op_cmp
  | Some ("min" | "max" | "Float.min" | "Float.max" | "Int.min" | "Int.max") ->
      Some Op_minmax
  | Some ("~-" | "~-." | "abs" | "abs_float" | "Float.abs" | "Int.abs" | "float_of_int"
         | "int_of_float" | "Float.of_int" | "Float.to_int" | "Float.round" | "floor"
         | "ceil" | "Float.floor" | "Float.ceil" | "truncate") ->
      Some Op_pass
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The per-unit scan *)

type ctx = {
  file : string;
  mutable findings : Lint_core.finding list;
  (* R5 walk state (saved/restored around recursion) *)
  mutable hot : bool;
  mutable alloc_ok : bool;
  mutable spine : expression list;  (* physical identity *)
  (* R7 ident environment: Ident.unique_name -> unit value. Idents are
     unique per compilation unit, so one flat table is scope-correct. *)
  units : (string, unit_v) Hashtbl.t;
  mutable emit_r7 : bool;  (* false on the populate pass *)
  (* [@lint.allow ...] regions: (rule, first_line, last_line) *)
  mutable regions : (string * int * int) list;
}

let emit ctx (loc : Location.t) rule message =
  let p = loc.loc_start in
  ctx.findings <-
    {
      Lint_core.file = ctx.file;
      line = p.Lexing.pos_lnum;
      col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
      rule;
      message;
      stage = "typed";
    }
    :: ctx.findings

let note_allow_regions ctx (attrs : attributes) (loc : Location.t) =
  match Lint_core.rules_of_allow_attrs attrs with
  | [] -> ()
  | rules ->
      let first = loc.loc_start.Lexing.pos_lnum and last = loc.loc_end.Lexing.pos_lnum in
      ctx.regions <- List.map (fun r -> (r, first, last)) rules @ ctx.regions

(* ------------------------------------------------------------------ *)
(* R6 *)

let r6_targets = [ "="; "<>"; "compare"; "min"; "max"; "Hashtbl.hash"; "Hashtbl.seeded_hash" ]

let rec type_is_immediate ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) ->
      Path.same p Predef.path_int || Path.same p Predef.path_bool
      || Path.same p Predef.path_char || Path.same p Predef.path_unit
  | Types.Tlink ty | Types.Tsubst (ty, _) -> type_is_immediate ty
  | _ -> false

(* Argument types of the (instantiated) arrow type at this use site. *)
let rec arrow_args ty acc =
  match Types.get_desc ty with
  | Types.Tarrow (_, arg, rest, _) -> arrow_args rest (arg :: acc)
  | _ -> List.rev acc

let check_r6 ctx e =
  match e.exp_desc with
  | Texp_ident (path, { loc; _ }, _) -> (
      match stdlib_name path with
      | Some name when List.mem name r6_targets -> (
          let args = arrow_args e.exp_type [] in
          match List.find_opt (fun ty -> not (type_is_immediate ty)) args with
          | Some bad ->
              emit ctx loc "R6"
                (Printf.sprintf
                   "polymorphic %s instantiated at %s (not an immediate int/bool/char/unit): \
                    generic compare walks memory, is wrong on nan, and is slow on the hot \
                    path; use the type's monomorphic comparison (String.equal, Float.compare, \
                    a match, ...)"
                   name (type_to_string bad))
          | None -> ())
      | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* R5 *)

(* The spine of a hot binding: the curried Texp_function chain that IS
   the function being defined, as opposed to closures it builds per
   call. Multi-case `function` bodies terminate the spine (each case
   body is ordinary code); single-case chains are curried parameters. *)
let rec function_spine e acc =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } -> function_spine c.c_rhs (e :: acc)
  | Texp_function _ -> e :: acc
  | _ -> acc

let float_typed e =
  match Types.get_desc e.exp_type with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_float
  | _ -> false

(* Stdlib entry points known to allocate on every call. Module-level
   prefixes catch whole formatting/buffer families; the explicit list
   covers the container and string workhorses. Deliberately curated --
   unknown calls stay silent (the rule errs toward silence, the escape
   hatch documents the reviewed ones). *)
let allocating_prefixes = [ "Printf."; "Format."; "Buffer."; "Scanf."; "Marshal."; "Digest."; "Seq." ]

let allocating_calls =
  [
    "ref"; "^"; "@"; "string_of_int"; "string_of_float"; "string_of_bool";
    "float_of_string"; "int_of_string"; "string_of_format";
    "String.make"; "String.init"; "String.sub"; "String.concat"; "String.map";
    "String.mapi"; "String.cat"; "String.split_on_char"; "String.trim"; "String.escaped";
    "String.uppercase_ascii"; "String.lowercase_ascii"; "String.capitalize_ascii";
    "String.to_bytes"; "String.of_bytes";
    "Bytes.create"; "Bytes.make"; "Bytes.init"; "Bytes.sub"; "Bytes.copy";
    "Bytes.of_string"; "Bytes.to_string"; "Bytes.extend"; "Bytes.cat";
    "Array.make"; "Array.create_float"; "Array.init"; "Array.make_matrix";
    "Array.append"; "Array.concat"; "Array.sub"; "Array.copy"; "Array.of_list";
    "Array.to_list"; "Array.map"; "Array.mapi"; "Array.split"; "Array.combine";
    "List.map"; "List.mapi"; "List.rev"; "List.append"; "List.concat";
    "List.concat_map"; "List.filter"; "List.filteri"; "List.filter_map";
    "List.init"; "List.cons"; "List.sort"; "List.stable_sort"; "List.fast_sort";
    "List.merge"; "List.split"; "List.combine"; "List.partition"; "List.rev_append";
    "List.rev_map"; "List.of_seq";
    "Queue.create"; "Queue.push"; "Queue.add"; "Queue.copy"; "Queue.take_opt";
    "Queue.peek_opt";
    "Stack.create"; "Stack.push";
    "Hashtbl.create"; "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.copy";
    "Hashtbl.find_opt"; "Hashtbl.to_seq";
    "Option.map"; "Option.bind"; "Option.some"; "Option.to_list";
    "Result.map"; "Result.bind"; "Result.ok"; "Result.error";
    "Float.to_string"; "Int.to_string"; "Bool.to_string"; "Char.escaped";
    "Filename.concat"; "Filename.basename"; "Filename.dirname";
  ]

let allocating_call name =
  List.exists (fun s -> String.equal s name) allocating_calls
  || List.exists
       (fun pre ->
         let pl = String.length pre in
         String.length name > pl && String.equal (String.sub name 0 pl) pre)
       allocating_prefixes

let record_allocates = function
  | Types.Record_unboxed _ -> false
  | Types.Record_regular | Types.Record_float | Types.Record_inlined _
  | Types.Record_extension _ ->
      true

let constructor_allocates (cd : Types.constructor_description) args =
  (match args with [] -> false | _ :: _ -> true)
  &&
  match cd.Types.cstr_tag with
  | Types.Cstr_constant _ | Types.Cstr_unboxed -> false
  | Types.Cstr_block _ | Types.Cstr_extension _ -> true

(* A float-typed RHS that is already a heap value (ident, field of a
   mixed record): storing it copies a pointer. Anything computed is a
   fresh box when the destination field is not float-only storage. *)
let float_already_boxed rhs =
  match rhs.exp_desc with
  | Texp_ident _ -> true
  | Texp_field (_, _, lbl) -> (
      match lbl.Types.lbl_repres with Types.Record_float -> false | _ -> true)
  | _ -> false

let check_r5 ctx e =
  if ctx.hot && not ctx.alloc_ok && not (List.memq e ctx.spine) then begin
    let flag what = emit ctx e.exp_loc "R5" (what ^ " in [@ccsim.hot] code; restructure to a preallocated/flat representation or annotate [@ccsim.alloc_ok \"why\"]") in
    match e.exp_desc with
    | Texp_function _ -> flag "closure construction (heap-allocated environment per evaluation)"
    | Texp_tuple _ -> flag "tuple construction"
    | Texp_construct ({ txt; _ }, cd, args) when constructor_allocates cd args ->
        flag
          (Printf.sprintf "constructor %s application (heap block)"
             (String.concat "." (Longident.flatten txt)))
    | Texp_variant (_, Some _) -> flag "polymorphic variant construction"
    | Texp_record { representation; _ } when record_allocates representation ->
        flag "record construction"
    | Texp_array (_ :: _) -> flag "array literal"
    | Texp_lazy _ -> flag "lazy suspension"
    | Texp_object _ -> flag "object construction"
    | Texp_pack _ -> flag "first-class module packing"
    | Texp_field (_, _, lbl) when
        (match lbl.Types.lbl_repres with Types.Record_float -> true | _ -> false) ->
        flag
          (Printf.sprintf "float read from float-only record field %s (boxes the result)"
             lbl.Types.lbl_name)
    | Texp_setfield (_, _, lbl, rhs)
      when (match lbl.Types.lbl_repres with Types.Record_float -> false | _ -> true)
           && float_typed rhs
           && not (float_already_boxed rhs) ->
        flag
          (Printf.sprintf "computed float stored into mutable field %s (boxes the value)"
             lbl.Types.lbl_name)
    | Texp_apply (f, args) -> (
        (match f.exp_desc with
        | Texp_ident (path, _, _) -> (
            match stdlib_name path with
            | Some name when allocating_call name ->
                flag (Printf.sprintf "call to allocating stdlib function %s" name)
            | _ -> ())
        | _ -> ());
        (* An arrow-typed result alone is not evidence: a full application
           can legitimately return a stored callback (an event payload,
           say). Omitted labelled arguments are — the compiler builds a
           closure capturing the supplied ones. *)
        if List.exists (fun (_, arg) -> Option.is_none arg) args then
          flag "partial application (allocates a closure)")
    | _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* R7 inference: never emits; the checking hooks call it on operands. *)

let unit_of_ident ctx path =
  match dim_of_name (Path.last path) with
  | Some d -> U_dim d
  | None -> (
      match path with
      | Path.Pident id -> (
          match Hashtbl.find_opt ctx.units (Ident.unique_name id) with
          | Some u -> u
          | None -> U_unknown)
      | _ -> U_unknown)

let unit_join a b =
  match (a, b) with
  | U_dim da, U_dim db when dim_eq da db -> a
  | U_const, U_const -> U_const
  | U_dim _, U_const -> a
  | U_const, U_dim _ -> b
  | _ -> U_unknown

let rec infer_unit ctx e =
  match e.exp_desc with
  | Texp_constant _ -> U_const
  | Texp_ident (path, _, _) -> unit_of_ident ctx path
  | Texp_field (_, _, lbl) -> (
      match dim_of_name lbl.Types.lbl_name with Some d -> U_dim d | None -> U_unknown)
  | Texp_let (_, _, body) | Texp_sequence (_, body) | Texp_open (_, body) ->
      infer_unit ctx body
  | Texp_ifthenelse (_, a, Some b) -> unit_join (infer_unit ctx a) (infer_unit ctx b)
  | Texp_match (_, cases, _) -> (
      match List.map (fun c -> infer_unit ctx c.c_rhs) cases with
      | [] -> U_unknown
      | u :: rest -> List.fold_left unit_join u rest)
  | Texp_apply (f, args) -> (
      let plain =
        List.filter_map
          (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
          args
      in
      let op =
        match f.exp_desc with Texp_ident (p, _, _) -> classify_op p | _ -> None
      in
      match (op, plain) with
      | Some Op_pass, [ a ] -> infer_unit ctx a
      | Some (Op_add | Op_minmax), [ a; b ] ->
          (* mismatches are reported by the checking hook; here just infer *)
          (match (infer_unit ctx a, infer_unit ctx b) with
          | U_dim da, U_dim db -> if dim_eq da db then U_dim da else U_unknown
          | U_dim d, U_const | U_const, U_dim d -> U_dim d
          | U_const, U_const -> U_const
          | _ -> U_unknown)
      | Some Op_mul, [ a; b ] -> (
          match (infer_unit ctx a, infer_unit ctx b) with
          | U_const, u | u, U_const -> u
          | U_dim da, U_dim db -> U_dim (dim_add da db)
          | _ -> U_unknown)
      | Some Op_div, [ a; b ] -> (
          match (infer_unit ctx a, infer_unit ctx b) with
          | u, U_const -> u
          | U_const, U_dim d -> U_dim (dim_sub dim_zero d)
          | U_dim da, U_dim db -> U_dim (dim_sub da db)
          | _ -> U_unknown)
      | Some Op_cmp, _ -> U_const
      | _ -> U_unknown)
  | _ -> U_unknown

(* Checking hook: dimension mismatches at additive/comparison/min-max
   operators, reported with both inferred dimensions. *)
let check_r7_expr ctx e =
  if ctx.emit_r7 then
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, { loc; _ }, _); _ }, args) -> (
        let plain =
          List.filter_map
            (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
            args
        in
        match (classify_op p, plain) with
        | Some ((Op_add | Op_cmp | Op_minmax) as cls), [ a; b ] -> (
            match (infer_unit ctx a, infer_unit ctx b) with
            | U_dim da, U_dim db when not (dim_eq da db) ->
                let what =
                  match cls with
                  | Op_add -> "additive operator"
                  | Op_cmp -> "comparison"
                  | _ -> "min/max"
                in
                emit ctx loc "R7"
                  (Printf.sprintf
                     "unit mismatch: %s %s combines %s with %s (dimensions inferred from \
                      name suffixes and propagated through arithmetic)"
                     what (Path.last p) (dim_to_string da) (dim_to_string db))
            | _ -> ())
        | _ -> ())
    | Texp_setfield (_, { loc; _ }, lbl, rhs) -> (
        match dim_of_name lbl.Types.lbl_name with
        | Some want -> (
            match infer_unit ctx rhs with
            | U_dim got when not (dim_eq got want) ->
                emit ctx loc "R7"
                  (Printf.sprintf
                     "unit mismatch: field %s declares %s but the stored expression is %s"
                     lbl.Types.lbl_name (dim_to_string want) (dim_to_string got))
            | _ -> ())
        | None -> ())
    | Texp_record { fields; _ } ->
        Array.iter
          (fun (lbl, def) ->
            match (dim_of_name lbl.Types.lbl_name, def) with
            | Some want, Overridden ({ loc; _ }, rhs) -> (
                match infer_unit ctx rhs with
                | U_dim got when not (dim_eq got want) ->
                    emit ctx loc "R7"
                      (Printf.sprintf
                         "unit mismatch: field %s declares %s but the bound expression is %s"
                         lbl.Types.lbl_name (dim_to_string want) (dim_to_string got))
                | _ -> ())
            | _ -> ())
          fields
    | _ -> ()

(* Value bindings: populate the ident environment (suffix wins,
   inferred dimension otherwise) and check declared-vs-inferred. *)
let check_r7_binding ctx vb =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, { txt = name; loc }) -> (
      let inferred = infer_unit ctx vb.vb_expr in
      match dim_of_name name with
      | Some declared ->
          Hashtbl.replace ctx.units (Ident.unique_name id) (U_dim declared);
          if ctx.emit_r7 then begin
            match inferred with
            | U_dim got when not (dim_eq got declared) ->
                emit ctx loc "R7"
                  (Printf.sprintf
                     "unit mismatch: %s is declared %s by its suffix but its definition is %s"
                     name (dim_to_string declared) (dim_to_string got))
            | _ -> ()
          end
      | None -> (
          match inferred with
          | U_dim _ -> Hashtbl.replace ctx.units (Ident.unique_name id) inferred
          | _ -> ()))
  | _ -> ()

(* Function parameters seed the environment from their suffixes. *)
let note_param_units ctx (c : value case) =
  let rec walk : type k. k general_pattern -> unit =
   fun p ->
    match p.pat_desc with
    | Tpat_var (id, { txt = name; _ }) -> (
        match dim_of_name name with
        | Some d -> Hashtbl.replace ctx.units (Ident.unique_name id) (U_dim d)
        | None -> ())
    | Tpat_alias (inner, id, { txt = name; _ }) ->
        (match dim_of_name name with
        | Some d -> Hashtbl.replace ctx.units (Ident.unique_name id) (U_dim d)
        | None -> ());
        walk inner
    | Tpat_tuple ps -> List.iter walk ps
    | Tpat_construct (_, _, ps, _) -> List.iter walk ps
    | Tpat_record (fields, _) -> List.iter (fun (_, _, p) -> walk p) fields
    | Tpat_or (a, b, _) -> walk a; walk b
    | _ -> ()
  in
  walk c.c_lhs

(* ------------------------------------------------------------------ *)
(* The walk *)

let iterator ctx =
  let default = Tast_iterator.default_iterator in
  let expr self e =
    note_allow_regions ctx e.exp_attributes e.exp_loc;
    let saved_hot = ctx.hot and saved_ok = ctx.alloc_ok and saved_spine = ctx.spine in
    (* [@ccsim.hot] on an expression roots a fresh hot region whose own
       function spine is exempt from the closure rule. *)
    if (not ctx.hot) && has_attr "ccsim.hot" e.exp_attributes then begin
      ctx.hot <- true;
      ctx.spine <- function_spine e []
    end;
    (match alloc_ok_attr e.exp_attributes with
    | Some (Some _why) -> ctx.alloc_ok <- true
    | Some None ->
        emit ctx e.exp_loc "R5"
          "[@ccsim.alloc_ok] requires a justification string: [@ccsim.alloc_ok \"why\"]";
        ctx.alloc_ok <- true
    | None -> ());
    check_r5 ctx e;
    check_r6 ctx e;
    check_r7_expr ctx e;
    (match e.exp_desc with
    | Texp_function { cases; _ } -> List.iter (note_param_units ctx) cases
    | Texp_match ({ exp_desc = Texp_tuple _; _ } as scrut, _, _) ->
        (* [match (a, b) with] deconstructs in place: the compiler never
           builds the scrutinee tuple, so exempt it like the spine. *)
        ctx.spine <- scrut :: ctx.spine
    | _ -> ());
    default.expr self e;
    ctx.hot <- saved_hot;
    ctx.alloc_ok <- saved_ok;
    ctx.spine <- saved_spine
  in
  let value_binding self vb =
    note_allow_regions ctx vb.vb_attributes vb.vb_loc;
    let saved_hot = ctx.hot and saved_ok = ctx.alloc_ok and saved_spine = ctx.spine in
    if (not ctx.hot) && has_attr "ccsim.hot" vb.vb_attributes then begin
      ctx.hot <- true;
      ctx.spine <- function_spine vb.vb_expr []
    end;
    (match alloc_ok_attr vb.vb_attributes with
    | Some (Some _why) -> ctx.alloc_ok <- true
    | Some None ->
        emit ctx vb.vb_loc "R5"
          "[@ccsim.alloc_ok] requires a justification string: [@ccsim.alloc_ok \"why\"]";
        ctx.alloc_ok <- true
    | None -> ());
    check_r7_binding ctx vb;
    default.value_binding self vb;
    ctx.hot <- saved_hot;
    ctx.alloc_ok <- saved_ok;
    ctx.spine <- saved_spine
  in
  { default with expr; value_binding }

let scan_structure ~file str =
  let ctx =
    {
      file;
      findings = [];
      hot = false;
      alloc_ok = false;
      spine = [];
      units = Hashtbl.create 64;
      emit_r7 = false;
      regions = [];
    }
  in
  let it = iterator ctx in
  (* Pass 1 populates the unit environment (and collects nothing else
     that survives); pass 2 emits. Idents are unique per unit, so the
     flat table carries forward-use information into the second pass. *)
  it.Tast_iterator.structure it str;
  ctx.findings <- [];
  ctx.regions <- [];
  ctx.emit_r7 <- true;
  it.Tast_iterator.structure it str;
  let regions = ctx.regions in
  List.filter
    (fun (f : Lint_core.finding) ->
      not
        (List.exists
           (fun (rule, first, last) ->
             String.equal rule f.rule && f.line >= first && f.line <= last)
           regions))
    ctx.findings

(* ------------------------------------------------------------------ *)
(* cmt discovery and the driver entry point *)

let rec cmt_files_under path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.concat_map (fun entry -> cmt_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".cmt" then [ path ]
  else []

(* Leading ".." segments are ignored on both sides so a scan rooted
   above the repo (the test suite's view) still matches build-root
   relative cmt_sourcefile paths like "lib/engine/sim.ml". *)
let strip_parents p =
  let rec strip = function ".." :: rest -> strip rest | segs -> segs in
  String.concat "/" (strip (String.split_on_char '/' (Lint_core.normalize p)))

let source_matches ~paths src =
  let s = strip_parents src in
  List.exists
    (fun p ->
      let p = strip_parents p in
      String.equal p s
      ||
      let pl = String.length p in
      String.length s > pl && String.equal (String.sub s 0 pl) p && s.[pl] = '/')
    paths

(* Comment-form suppressions need the source text. The cmt records the
   build-root-relative path; peel leading directories until something
   exists (a test running in _build/default/test sees
   "lint_fixtures_typed/..." for "test/lint_fixtures_typed/..."), and
   try each source_root prefix. Unreadable source just means no
   comment-form suppression -- attributes still apply. *)
let find_source ~source_roots src =
  let rec candidates s acc =
    let acc = s :: acc in
    match String.index_opt s '/' with
    | Some i -> candidates (String.sub s (i + 1) (String.length s - i - 1)) acc
    | None -> List.rev acc
  in
  let cands = candidates (Lint_core.normalize src) [] in
  List.find_map
    (fun root ->
      List.find_map
        (fun c ->
          let path = if String.equal root "." then c else Filename.concat root c in
          if Sys.file_exists path && not (Sys.is_directory path) then Some path else None)
        cands)
    source_roots

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan ?(source_roots = [ "." ]) ~cmt_roots ~paths () =
  let cmts = List.concat_map cmt_files_under cmt_roots in
  let seen = Hashtbl.create 16 in
  let findings = ref [] in
  List.iter
    (fun cmt_path ->
      match Cmt_format.read_cmt cmt_path with
      | {
          Cmt_format.cmt_annots = Cmt_format.Implementation str;
          cmt_sourcefile = Some src;
          _;
        }
        when source_matches ~paths src && not (Hashtbl.mem seen src) ->
          Hashtbl.replace seen src ();
          let file = Lint_core.normalize src in
          let fs = scan_structure ~file str in
          let fs =
            match find_source ~source_roots src with
            | None -> fs
            | Some path -> (
                match read_file path with
                | source ->
                    let suppressed = Lint_core.suppressions_of_source source in
                    List.filter
                      (fun (f : Lint_core.finding) ->
                        not (Hashtbl.mem suppressed (f.line, f.rule)))
                      fs
                | exception Sys_error _ -> fs)
          in
          findings := fs @ !findings
      | _ -> ()
      | exception _ -> ())
    cmts;
  List.sort_uniq Lint_core.compare_finding !findings
