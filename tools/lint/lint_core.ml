(* ccsim-lint: determinism & data-race static analysis over the
   simulator sources.

   The reproduction rests on two invariants the type system cannot see:
   every experiment is bit-deterministic (runner cache digests and the
   offline `analyze` agreement both depend on it), and nothing shares
   mutable state across the Ccsim_runner domain pool. This pass makes
   the PR 1 hand audit machine-checked:

   R1  top-level mutable state (ref / Hashtbl.create / arrays / queues /
       buffers at module scope) must be Atomic.t, Domain.DLS-keyed, or
       carry an explicit (* lint: domain-local *) annotation or a
       lint.allow entry -- the domain-pool race detector.
   R2  nondeterminism sources in sim code: Random.*, wall-clock reads
       (Unix.gettimeofday / Unix.time / Sys.time / ...) and host-GC
       reads (Gc.stat / quick_stat / counters / ...) outside
       lib/runner and lib/obs, and order-dependent Hashtbl.iter/fold.
   R3  structural float equality (= / <> applied to float-looking
       operands), which silently breaks change-point and elasticity
       thresholds; use Ccsim_util.Feq.feq ~eps instead.
   R4  unit-suffix mixing: additive or comparison operators whose two
       operands carry different unit suffixes (_s vs _bps vs _bytes ...).

   The walk is a heuristic parsetree pass (no type information): it
   errs toward silence on constructs it cannot classify, and every
   finding can be suppressed by an inline annotation or a reviewed
   lint.allow entry carrying a justification. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  stage : string;
}

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Allowlist: one reviewed exception per line, `RULE PATH JUSTIFICATION`.
   The justification is mandatory -- an entry without one is itself an
   error, as is an entry that no longer matches any finding (stale). *)

type allow_entry = {
  a_rule : string;
  a_path : string;
  a_justification : string;
  a_line : int;
}

exception Malformed_allow of string

let parse_allow_line ~line_no line =
  let trimmed = String.trim line in
  if String.equal trimmed "" || trimmed.[0] = '#' then None
  else
    match String.split_on_char ' ' trimmed with
    | rule :: path :: rest when (match rest with [] -> false | _ :: _ -> true) ->
        let justification = String.trim (String.concat " " rest) in
        if String.equal justification "" then
          raise
            (Malformed_allow
               (Printf.sprintf "line %d: missing justification for %s %s" line_no rule path))
        else Some { a_rule = rule; a_path = path; a_justification = justification; a_line = line_no }
    | _ ->
        raise
          (Malformed_allow
             (Printf.sprintf "line %d: expected `RULE PATH JUSTIFICATION...`, got %S" line_no
                trimmed))

let load_allowlist path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in path in
    let entries = ref [] in
    let line_no = ref 0 in
    (try
       while true do
         incr line_no;
         let line = input_line ic in
         match parse_allow_line ~line_no:!line_no line with
         | Some e -> entries := e :: !entries
         | None -> ()
       done
     with End_of_file -> close_in ic);
    List.rev !entries
  end

(* ------------------------------------------------------------------ *)
(* Inline annotations. The parser drops comments, so suppressions are
   recovered from the raw source text: an annotation on line L covers
   findings on lines L and L+1 (comment-above or comment-at-end-of-line
   styles both work).

     (* lint: domain-local *)      suppresses R1
     (* lint: allow R2 R3 *)       suppresses the listed rules *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.equal (String.sub hay i nl) needle || go (i + 1)) in
  go 0

let rules_of_annotation line =
  let rules = if contains ~needle:"lint: domain-local" line then [ "R1" ] else [] in
  if not (contains ~needle:"lint: allow" line) then rules
  else begin
    (* Take every R<digits> token after the marker. *)
    let idx =
      let nl = String.length "lint: allow" and hl = String.length line in
      let rec go i = if i + nl > hl then hl else if String.equal (String.sub line i nl) "lint: allow" then i + nl else go (i + 1) in
      go 0
    in
    let tail = String.sub line idx (String.length line - idx) in
    let tokens =
      String.split_on_char ' ' (String.map (fun c -> if c = '*' || c = ')' || c = ',' then ' ' else c) tail)
    in
    let explicit =
      List.filter
        (fun t ->
          String.length t >= 2
          && t.[0] = 'R'
          && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub t 1 (String.length t - 1)))
        tokens
    in
    rules @ explicit
  end

(* Attribute-based suppression: [@lint.allow R5 R6] on an expression or
   value binding suppresses the listed rules over the whole source span
   of the annotated node — the escape hatch for multi-line functions,
   where the comment form's L/L+1 window would need stacking. The
   payload is scanned structurally for R<digits> tokens, so `R5`,
   `R5 R6`, and `(R5, R6)` all parse. Shared with the typed stage
   (Typedtree nodes carry the same Parsetree attributes). *)

let is_rule_token t =
  String.length t >= 2
  && t.[0] = 'R'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub t 1 (String.length t - 1))

let rules_of_allow_payload (payload : Parsetree.payload) =
  let acc = ref [] in
  let note = function
    | Longident.Lident t when is_rule_token t -> acc := t :: !acc
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } | Parsetree.Pexp_construct ({ txt; _ }, _) ->
              note txt
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  (match payload with
  | Parsetree.PStr str -> it.Ast_iterator.structure it str
  | _ -> ());
  List.rev !acc

let rules_of_allow_attrs (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt "lint.allow" then rules_of_allow_payload a.attr_payload else [])
    attrs

(* (rule, first_line, last_line) regions from [@lint.allow ...] attrs. *)
type allow_region = { r_rule : string; r_first : int; r_last : int }

let region_of_loc rules (loc : Location.t) =
  let first = loc.loc_start.Lexing.pos_lnum and last = loc.loc_end.Lexing.pos_lnum in
  List.map (fun r -> { r_rule = r; r_first = first; r_last = last }) rules

let allow_regions_of_structure str =
  let regions = ref [] in
  let note rules loc = regions := region_of_loc rules loc @ !regions in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun self e ->
          (match rules_of_allow_attrs e.Parsetree.pexp_attributes with
          | [] -> ()
          | rules -> note rules e.Parsetree.pexp_loc);
          default.expr self e);
      value_binding =
        (fun self vb ->
          (match rules_of_allow_attrs vb.Parsetree.pvb_attributes with
          | [] -> ()
          | rules -> note rules vb.Parsetree.pvb_loc);
          default.value_binding self vb);
    }
  in
  it.Ast_iterator.structure it str;
  !regions

let region_suppresses regions (f : finding) =
  List.exists
    (fun r -> String.equal r.r_rule f.rule && f.line >= r.r_first && f.line <= r.r_last)
    regions

(* Map line number -> rules suppressed on that line. *)
let suppressions_of_source src =
  let table = Hashtbl.create 8 in
  let add line rule = Hashtbl.replace table (line, rule) () in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      let l = i + 1 in
      List.iter
        (fun rule ->
          add l rule;
          add (l + 1) rule)
        (rules_of_annotation line))
    lines;
  table

(* ------------------------------------------------------------------ *)
(* AST helpers *)

open Parsetree

let pos_of loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol)

let last_component lid = match List.rev (Longident.flatten lid) with [] -> "" | x :: _ -> x

let has_component name lid = List.mem name (Longident.flatten lid)

(* The final expression a top-level binding evaluates to, looking
   through let/open/sequence/constraint wrappers:
   `let t = let h = Hashtbl.create 4 in h` is still module state. *)
let rec binding_head e =
  match e.pexp_desc with
  | Pexp_let (_, _, body) -> binding_head body
  | Pexp_open (_, body) -> binding_head body
  | Pexp_sequence (_, body) -> binding_head body
  | Pexp_constraint (e, _) -> binding_head e
  | _ -> e

(* Constructors of shared-mutable values at module scope. Atomic.make
   and Domain.DLS.new_key are the sanctioned alternatives and exempt. *)
let mutable_constructor e =
  match e.pexp_desc with
  | Pexp_array _ -> Some "array literal"
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match Longident.flatten txt with
      | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
      | [ "Hashtbl"; "create" ] | [ "Stdlib"; "Hashtbl"; "create" ] -> Some "Hashtbl.create"
      | [ "Array"; ("make" | "init" | "create_float" | "of_list" | "copy") ]
      | [ "Stdlib"; "Array"; ("make" | "init" | "create_float" | "of_list" | "copy") ] ->
          Some "Array allocation"
      | [ "Queue"; "create" ] -> Some "Queue.create"
      | [ "Stack"; "create" ] -> Some "Stack.create"
      | [ "Buffer"; "create" ] -> Some "Buffer.create"
      | [ "Bytes"; ("create" | "make" | "of_string") ] -> Some "Bytes allocation"
      | _ -> None)
  | _ -> None

(* Longidents whose mere use is a nondeterminism source (R2). *)
let wall_clock_ident lid =
  match Longident.flatten lid with
  | [ "Unix"; ("gettimeofday" | "time" | "localtime" | "gmtime" | "mktime") ] ->
      Some ("Unix." ^ last_component lid)
  | [ "Sys"; "time" ] -> Some "Sys.time"
  | _ -> None

(* Host-GC state reads (R2, same exemption as the wall clock): the
   counters depend on allocator behaviour, heap state and compaction
   history, so any simulated quantity derived from one is
   host-dependent. Ccsim_obs.Profile.gc_sample is the sanctioned choke
   point (lib/obs is exempt). *)
let gc_read_ident lid =
  match Longident.flatten lid with
  | [ "Gc"; (("stat" | "quick_stat" | "counters" | "minor_words" | "allocated_bytes") as fn) ]
    ->
      Some ("Gc." ^ fn)
  | _ -> None

let float_suffixes =
  [ "_s"; "_ms"; "_us"; "_bps"; "_kbps"; "_mbps"; "_gbps"; "_hz"; "_frac"; "_pct"; "_ratio"; "_eps" ]

let unit_suffixes =
  [ "_s"; "_ms"; "_us"; "_bps"; "_kbps"; "_mbps"; "_gbps"; "_bytes"; "_pkts"; "_hz" ]

let suffix_of suffixes name =
  List.find_opt
    (fun suf ->
      let nl = String.length name and sl = String.length suf in
      nl > sl && String.equal (String.sub name (nl - sl) sl) suf)
    suffixes

let float_operators = [ "+."; "-."; "*."; "/."; "**" ]

(* Heuristic: does this expression look float-typed? Used by R3 on the
   operands of = / <>. No typedtree, so only obviously-float shapes
   count: float literals, float arithmetic, Float.* accessors, deref of
   and fields/idents with a float-ish unit suffix. *)
let rec floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt = Longident.Lident ("infinity" | "neg_infinity" | "nan" | "epsilon_float" | "max_float" | "min_float"); _ } ->
      true
  | Pexp_ident { txt = Longident.Ldot (Longident.Lident "Float", _); _ } -> true
  | Pexp_ident { txt; _ } -> Option.is_some (suffix_of float_suffixes (last_component txt))
  | Pexp_field (_, { txt; _ }) -> Option.is_some (suffix_of float_suffixes (last_component txt))
  | Pexp_constraint (inner, { ptyp_desc = Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []); _ }) ->
      ignore inner;
      true
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident "!"; _ }; _ }, [ (_, inner) ]) ->
      floatish inner
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; _ }; _ }, _)
    when List.mem op float_operators ->
      true
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Ldot (Longident.Lident "Float", fn); _ }; _ }, _)
    when not (List.mem fn [ "to_int"; "compare"; "equal"; "is_integer"; "is_finite"; "is_nan"; "sign_bit" ]) ->
      true
  | _ -> false

let unit_suffix_of_operand e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> suffix_of unit_suffixes (last_component txt)
  | Pexp_field (_, { txt; _ }) -> suffix_of unit_suffixes (last_component txt)
  | _ -> None

let additive_or_comparison = [ "+."; "-."; "+"; "-"; "<"; "<="; ">"; ">="; "="; "<>" ]

(* ------------------------------------------------------------------ *)
(* The per-file scan *)

type context = {
  file : string;  (* path as reported in findings *)
  wall_clock_exempt : bool;  (* lib/runner + lib/obs may read the clock *)
  mutable findings : finding list;
}

let emit ctx loc rule message =
  let line, col = pos_of loc in
  ctx.findings <-
    ({ file = ctx.file; line; col; rule; message; stage = "parse" } : finding) :: ctx.findings

let check_expr ctx e =
  (* Uses are checked on the bare ident: the iterator visits the callee
     of every application, so applications are covered without double
     counting. *)
  (match e.pexp_desc with
  | Pexp_ident { txt; loc } -> (
      (if has_component "Random" txt then
         emit ctx loc "R2"
           (Printf.sprintf
              "nondeterminism: %s uses the global Random; use the seeded per-sim Ccsim_util.Rng instead"
              (String.concat "." (Longident.flatten txt))));
      (match wall_clock_ident txt with
      | Some name when not ctx.wall_clock_exempt ->
          emit ctx loc "R2"
            (Printf.sprintf
               "nondeterminism: wall-clock read %s outside lib/runner telemetry and lib/obs \
                profiling; route through Ccsim_runner.Telemetry.now_s or Ccsim_obs.Profile.wall_now"
               name)
      | Some _ | None -> ());
      (match gc_read_ident txt with
      | Some name when not ctx.wall_clock_exempt ->
          emit ctx loc "R2"
            (Printf.sprintf
               "nondeterminism: host-GC read %s outside lib/runner and lib/obs; route \
                allocation measurement through Ccsim_obs.Profile.gc_sample"
               name)
      | Some _ | None -> ());
      match Longident.flatten txt with
      | [ "Hashtbl"; (("iter" | "fold") as op) ] ->
          emit ctx loc "R2"
            (Printf.sprintf
               "nondeterminism: Hashtbl.%s visits bindings in hash order; iterate a deterministic \
                key list (or sort, then allowlist with a justification)"
               op)
      | _ -> ())
  | _ -> ());
  match e.pexp_desc with
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc; _ }; _ },
       [ (_, a); (_, b) ]) ->
      (if floatish a || floatish b then
         emit ctx loc "R3"
           (Printf.sprintf
              "structural float %s: silently breaks detector thresholds on representation \
               changes; use Ccsim_util.Feq.feq ~eps (eps = 0. preserves exact semantics)"
              op));
      (match (unit_suffix_of_operand a, unit_suffix_of_operand b) with
      | Some sa, Some sb when not (String.equal sa sb) ->
          emit ctx loc "R4"
            (Printf.sprintf "unit mismatch: operands of %s carry different unit suffixes (%s vs %s)"
               op sa sb)
      | _ -> ())
  | Pexp_apply
      ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; loc; _ }; _ }, [ (_, a); (_, b) ])
    when List.mem op additive_or_comparison -> (
      match (unit_suffix_of_operand a, unit_suffix_of_operand b) with
      | Some sa, Some sb when not (String.equal sa sb) ->
          emit ctx loc "R4"
            (Printf.sprintf "unit mismatch: operands of %s carry different unit suffixes (%s vs %s)"
               op sa sb)
      | _ -> ())
  | _ -> ()

let expr_iterator ctx =
  let default = Ast_iterator.default_iterator in
  {
    default with
    expr =
      (fun self e ->
        check_expr ctx e;
        default.expr self e);
  }

(* R1: walk structure items, descending into plain sub-modules (their
   bindings are just as module-global) but not into expressions --
   locals inside functions are per-call and safe. *)
let rec check_structure_r1 ctx str =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
          List.iter
            (fun vb ->
              let head = binding_head vb.pvb_expr in
              match mutable_constructor head with
              | Some what ->
                  let name =
                    match vb.pvb_pat.ppat_desc with
                    | Ppat_var { txt; _ } -> txt
                    | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> txt
                    | _ -> "_"
                  in
                  emit ctx vb.pvb_pat.ppat_loc "R1"
                    (Printf.sprintf
                       "top-level mutable state: %S is a %s at module scope and races under the \
                        runner domain pool; make it Atomic.t, Domain.DLS-keyed, per-instance \
                        state, or annotate (* lint: domain-local *) with care"
                       name what)
              | None -> ())
            bindings
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure sub; _ }; _ } ->
          check_structure_r1 ctx sub
      | _ -> ())
    str

let scan_source ~file ?(wall_clock_exempt = false) src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf file;
  let str = Parse.implementation lexbuf in
  let ctx = { file; wall_clock_exempt; findings = [] } in
  check_structure_r1 ctx str;
  let it = expr_iterator ctx in
  it.Ast_iterator.structure it str;
  let suppressed = suppressions_of_source src in
  let regions = allow_regions_of_structure str in
  let findings =
    List.filter
      (fun (f : finding) ->
        (not (Hashtbl.mem suppressed (f.line, f.rule))) && not (region_suppresses regions f))
      ctx.findings
  in
  List.sort_uniq compare_finding findings

(* Directories whose files may read the wall clock (R2 exemption): run
   telemetry and engine profiling are about the host, not the sim. *)
let wall_clock_exempt_dirs = [ "lib/runner"; "lib/obs" ]

let normalize path =
  String.concat "/" (List.filter (fun c -> not (String.equal c "") && not (String.equal c ".")) (String.split_on_char '/' path))

(* Exemption is by repo-relative directory, so leading parent segments
   (a scan rooted above the repo, as the test suite does) are ignored. *)
let is_exempt path =
  let rec strip = function ".." :: rest -> strip rest | segs -> segs in
  let p = String.concat "/" (strip (String.split_on_char '/' (normalize path))) in
  List.exists
    (fun dir ->
      let dl = String.length dir in
      String.length p > dl && String.equal (String.sub p 0 dl) dir && p.[dl] = '/')
    wall_clock_exempt_dirs

exception Scan_error of string

let scan_file path =
  let src =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> raise (Scan_error msg)
  in
  try scan_source ~file:(normalize path) ~wall_clock_exempt:(is_exempt path) src
  with exn -> (
    match Location.error_of_exn exn with
    | Some (`Ok _) | Some `Already_displayed ->
        raise (Scan_error (Printf.sprintf "%s: syntax error" path))
    | None -> raise exn)

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let scan_paths paths =
  let files = List.concat_map ml_files_under paths in
  List.sort compare_finding (List.concat_map scan_file files)

(* ------------------------------------------------------------------ *)
(* Applying the allowlist: an entry matches every finding of its rule in
   its file. Returns surviving findings plus entries that matched
   nothing (stale -- reported so the file cannot rot). *)

let apply_allowlist entries findings =
  let used = Hashtbl.create 8 in
  let survives (f : finding) =
    match
      List.find_opt (fun e -> String.equal e.a_rule f.rule && String.equal (normalize e.a_path) f.file) entries
    with
    | Some e ->
        Hashtbl.replace used (e.a_rule, e.a_path) ();
        false
    | None -> true
  in
  let kept = List.filter survives findings in
  let stale = List.filter (fun e -> not (Hashtbl.mem used (e.a_rule, e.a_path))) entries in
  (kept, stale)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let render_finding (f : finding) =
  Printf.sprintf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json findings =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i (f : finding) ->
      if i > 0 then Buffer.add_string buf ",";
      Printf.bprintf buf
        "\n  {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \"stage\": \"%s\", \
         \"message\": \"%s\"}"
        (json_escape f.file) f.line f.col f.rule (json_escape f.stage) (json_escape f.message))
    findings;
  if (match findings with [] -> false | _ :: _ -> true) then Buffer.add_string buf "\n";
  Buffer.add_string buf "]\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* SARIF 2.1.0 export: one run, one rule descriptor per catalogue entry,
   results referencing rules by id so GitHub code scanning annotates
   PRs. Columns are 1-based in SARIF; findings carry 0-based columns as
   compiler diagnostics do, hence the +1. *)

let rule_catalogue =
  [
    ("R1", "parse", "top-level mutable state",
     "Module-level mutable storage races under the runner domain pool; use Atomic.t, \
      Domain.DLS, or per-instance state.");
    ("R2", "parse", "nondeterminism sources",
     "Global Random, wall-clock or host-GC reads outside lib/runner and lib/obs, and \
      hash-order Hashtbl.iter/fold break bit-determinism.");
    ("R3", "parse", "structural float equality",
     "= / <> on float-looking operands silently breaks detector thresholds; use \
      Ccsim_util.Feq.feq ~eps.");
    ("R4", "parse", "unit-suffix mixing",
     "Additive or comparison operators whose operands carry different unit suffixes \
      (_s vs _bps ...).");
    ("R5", "typed", "allocation in [@ccsim.hot] code",
     "Functions annotated [@ccsim.hot] and everything they contain must not allocate: \
      closures, tuples, records, variants, strings, partial applications, allocating \
      stdlib calls. Escape hatch: [@ccsim.alloc_ok \"why\"].");
    ("R6", "typed", "polymorphic comparison at a non-immediate type",
     "Stdlib.(=)/(<>)/compare/min/max/Hashtbl.hash instantiated at a type other than \
      int/bool/char/unit walks memory generically: slow in the DES inner loop and wrong \
      on floats (nan) and cyclic values. Use the monomorphic comparison of the type.");
    ("R7", "typed", "unit mismatch (dimensional analysis)",
     "Units inferred from name suffixes and propagated through arithmetic disagree \
      across +/-/comparison. * and / combine dimensions; scale prefixes are ignored.");
  ]

let render_sarif findings =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\n\
    \  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [\n\
    \    {\n\
    \      \"tool\": {\n\
    \        \"driver\": {\n\
    \          \"name\": \"ccsim-lint\",\n\
    \          \"informationUri\": \"tools/lint/RULES.md\",\n\
    \          \"rules\": [\n";
  List.iteri
    (fun i (id, stage, name, help) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Printf.bprintf buf
        "            {\"id\": \"%s\", \"name\": \"%s\", \"shortDescription\": {\"text\": \
         \"%s\"}, \"fullDescription\": {\"text\": \"%s\"}, \"properties\": {\"stage\": \
         \"%s\"}}"
        id id (json_escape name) (json_escape help) stage)
    rule_catalogue;
  Buffer.add_string buf "\n          ]\n        }\n      },\n      \"results\": [";
  (match findings with [] -> () | _ :: _ -> Buffer.add_string buf "\n");
  List.iteri
    (fun i (f : finding) ->
      if i > 0 then Buffer.add_string buf ",\n";
      let rule_index =
        let rec idx n = function
          | [] -> -1
          | (id, _, _, _) :: rest -> if String.equal id f.rule then n else idx (n + 1) rest
        in
        idx 0 rule_catalogue
      in
      Printf.bprintf buf
        "        {\"ruleId\": \"%s\", \"ruleIndex\": %d, \"level\": \"error\", \
         \"message\": {\"text\": \"%s\"}, \"locations\": [{\"physicalLocation\": \
         {\"artifactLocation\": {\"uri\": \"%s\"}, \"region\": {\"startLine\": %d, \
         \"startColumn\": %d}}}]}"
        f.rule rule_index (json_escape f.message) (json_escape f.file) f.line (f.col + 1))
    findings;
  (match findings with
  | [] -> Buffer.add_string buf "]\n    }\n  ]\n}\n"
  | _ :: _ -> Buffer.add_string buf "\n      ]\n    }\n  ]\n}\n");
  Buffer.contents buf
