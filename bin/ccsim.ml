(* ccsim — regenerate the paper's figures and experiments from the CLI.

   Subcommands are generated from Ccsim_core.Experiments (DESIGN.md's
   index) and execute through Ccsim_runner: jobs on a domain pool
   (-j N), a content-addressed result cache, and run telemetry. `ccsim
   all` runs everything; `ccsim sweep` runs cross-products over
   experiments x seeds x durations.

   Observability (--metrics / --flight-rec / --profile) attaches a
   per-job Ccsim_obs scope around each job thunk: every component the
   job creates picks up the instruments from the ambient scope, and
   the collected data is exported after the pool drains. Instrumented
   runs always recompute (a cache hit would skip the thunk and leave
   the instruments empty). *)

open Cmdliner
module R = Ccsim_runner
module E = Ccsim_core.Experiments
module Obs = Ccsim_obs
module Faults = Ccsim_faults

let seed_arg =
  let doc = "Deterministic seed for the experiment." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let duration_arg default =
  let doc = "Simulated seconds per scenario." in
  Arg.(value & opt float default & info [ "duration" ] ~docv:"SECONDS" ~doc)

let flows_arg default =
  let doc = "Synthetic population size (flows/candidates to generate)." in
  Arg.(value & opt int default & info [ "flows" ] ~docv:"N" ~doc)

let backend_arg =
  let doc =
    "Simulation backend: $(b,packet) (discrete-event), $(b,fluid) (per-flow rate ODEs), \
     or $(b,hybrid) (packet foreground against fluid background aggregates). Defaults to \
     the experiment's first supported backend."
  in
  Arg.(value & opt (some string) None & info [ "backend" ] ~docv:"BACKEND" ~doc)

(* Reject a backend the experiment does not support before any job is
   built. Exit 124, not the usage-error 2: an unsupported backend is a
   capability gap, reported like a timeout so sweeps can tell the two
   apart (see the exit-code table in the README). *)
let validate_backend (e : E.t) = function
  | None -> None
  | Some b ->
      if List.mem b e.backends then Some b
      else begin
        Printf.eprintf "ccsim %s: unsupported backend %S (supported: %s)\n" e.id b
          (String.concat ", " e.backends);
        exit 124
      end

let jobs_arg =
  let doc = "Worker domains; 1 runs serially (bit-identical to the pre-runner CLI)." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* --- fault injection ------------------------------------------------------- *)

let plan_conv =
  let parse s =
    match Faults.Plan.parse s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg ("invalid fault plan: " ^ msg))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Faults.Plan.to_string p))

let faults_arg =
  let doc =
    "Arm a deterministic fault-injection plan against every scenario's bottleneck: \
     semicolon-separated clauses such as $(b,outage at=20 dur=2), $(b,burst-loss at=30 \
     dur=20 p-enter=0.01 p-exit=0.25 loss-bad=0.3), $(b,capacity at=10 factor=0.5 dur=5), \
     $(b,ramp), $(b,loss), $(b,corrupt), $(b,duplicate), $(b,reorder), $(b,delay-spike), \
     $(b,qdisc-reset at=40), $(b,flap from=10 until=50 mean-up=5 mean-down=0.5). Fault \
     events are journaled by the flight recorder (class $(b,fault)) and mirrored as \
     $(b,fault_span) timeline series. A malformed plan is a usage error."
  in
  Arg.(value & opt (some plan_conv) None & info [ "faults" ] ~docv:"PLAN" ~doc)

let fault_seed_arg =
  let doc =
    "Seed for the fault plan's SplitMix64 streams (flap holding times, per-packet \
     loss/corruption draws). Independent of --seed: the same workload can be replayed \
     under different chaos. Same (plan, fault-seed) reproduces byte-identically."
  in
  Arg.(value & opt int 42 & info [ "fault-seed" ] ~docv:"SEED" ~doc)

let faults_term =
  Term.(
    const (fun plan fault_seed -> Option.map (fun p -> (p, fault_seed)) plan)
    $ faults_arg $ fault_seed_arg)

let no_cache_arg =
  let doc = "Always recompute; do not read or write the result cache." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let report_arg =
  let doc = "Write the machine-readable JSON run report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

(* --- observability flags --------------------------------------------------- *)

let metrics_arg =
  let doc =
    "Collect the metrics registry (counters, gauges, histograms) of every job and write \
     it to $(docv) as NDJSON, one instrument per line, each line tagged with its job."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let flight_arg =
  let doc =
    "Record a structured flight journal (packet events, qdisc drops, CCA decisions) per \
     job and write it to $(docv); a .csv extension selects CSV, anything else NDJSON."
  in
  Arg.(value & opt (some string) None & info [ "flight-rec" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Profile the event loop: per-component execution time, events/sec, simulated-vs-real \
     speedup, peak heap depth. Summaries go to stderr; the full profile is embedded in \
     the JSON report."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let series_arg =
  let doc =
    "Sample timeline series (per-flow goodput/cwnd/srtt/inflight, queue backlog and \
     drops, Nimbus elasticity) on the simulation clock and write them to $(docv); a .csv \
     extension selects CSV, anything else NDJSON (one point per line, analyzable offline \
     with `ccsim analyze`)."
  in
  Arg.(value & opt (some string) None & info [ "series" ] ~docv:"FILE" ~doc)

let series_interval_arg =
  let doc = "Timeline sampling interval in simulated seconds." in
  Arg.(
    value
    & opt float Obs.Timeline.default_interval
    & info [ "series-interval" ] ~docv:"SECONDS" ~doc)

let chrome_arg =
  let doc =
    "Export a Chrome trace-event file to $(docv) — timeline series as counter tracks \
     merged with flight-recorder events — loadable in Perfetto (ui.perfetto.dev) or \
     chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "chrome-trace" ] ~docv:"FILE" ~doc)

let check_arg =
  let doc =
    "Run the invariant watchdog: packet/byte conservation per link, queue backlog within \
     capacity, positive cwnd, clock monotonicity, telemetry ordering. The first violation \
     fails the run with a structured report."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let check_policy_arg =
  let doc =
    "Watchdog violation policy (implies --check): $(b,abort) fails the run on the first \
     violation (the --check default), $(b,quarantine) completes the run but marks the job \
     degraded, $(b,warn) only reports violations on stderr."
  in
  let policy_conv =
    let parse s =
      match Obs.Watchdog.policy_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg (Printf.sprintf "expected warn, quarantine or abort, got %S" s))
    in
    Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (Obs.Watchdog.policy_to_string p))
  in
  Arg.(value & opt (some policy_conv) None & info [ "check-policy" ] ~docv:"POLICY" ~doc)

(* Reject non-positive values at parse time: Recorder.create /
   Span.create would raise the same complaint as an uncaught
   Invalid_argument. *)
let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some _ -> Error (`Msg "value must be positive")
    | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let flight_cap_arg =
  let doc =
    "Flight recorder capacity: keep the most recent $(docv) events per job. Must be \
     positive."
  in
  Arg.(
    value
    & opt positive_int Obs.Recorder.default_capacity
    & info [ "flight-rec-cap" ] ~docv:"N" ~doc)

let flight_level_arg =
  let doc =
    "Flight recorder severity floor: $(b,debug) (keep everything, the default), \
     $(b,info), $(b,warn) or $(b,error). Events below the floor are discarded at record \
     time without counting against the capacity."
  in
  let level_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "debug" -> Ok Obs.Recorder.Debug
      | "info" -> Ok Obs.Recorder.Info
      | "warn" -> Ok Obs.Recorder.Warn
      | "error" -> Ok Obs.Recorder.Error
      | _ ->
          Error (`Msg (Printf.sprintf "expected debug, info, warn or error, got %S" s))
    in
    Arg.conv
      (parse, fun ppf l -> Format.pp_print_string ppf (Obs.Recorder.severity_to_string l))
  in
  Arg.(
    value
    & opt level_conv Obs.Recorder.Debug
    & info [ "flight-rec-level" ] ~docv:"LEVEL" ~doc)

let spans_arg =
  let doc =
    "Record sampled packet lifecycle spans: for a deterministic 1-in-N sample of packets \
     (see --span-sample), the enqueue → dequeue → serialization → delivery/drop \
     timestamps at every hop, decomposing hop delay into queueing, serialization and \
     propagation. Spans export as per-hop duration tracks in --chrome-trace and journal \
     as class-$(b,span) events in --flight-rec; a per-job summary goes to stderr."
  in
  Arg.(value & flag & info [ "spans" ] ~doc)

let default_span_sample = 64

let span_sample_arg =
  let doc =
    "Span sampling rate: record one packet in $(docv), selected by packet uid (no RNG is \
     consumed, so sampling never perturbs results). 1 records every packet. Implies \
     --spans."
  in
  Arg.(
    value & opt (some positive_int) None & info [ "span-sample" ] ~docv:"N" ~doc)

type obs_cfg = {
  metrics_path : string option;
  flight_path : string option;
  profile : bool;
  series_path : string option;
  series_interval : float;
  chrome_path : string option;
  check : bool;
  check_policy : Obs.Watchdog.policy option;
  flight_cap : int;
  flight_level : Obs.Recorder.severity;
  spans : bool;
  span_sample : int;
}

let obs_cfg_term =
  let make metrics_path flight_path profile series_path series_interval chrome_path check
      check_policy flight_cap flight_level spans span_sample =
    {
      metrics_path;
      flight_path;
      profile;
      series_path;
      series_interval;
      chrome_path;
      check = check || check_policy <> None;
      check_policy;
      flight_cap;
      flight_level;
      spans = spans || span_sample <> None;
      span_sample = Option.value span_sample ~default:default_span_sample;
    }
  in
  Term.(
    const make $ metrics_arg $ flight_arg $ profile_arg $ series_arg $ series_interval_arg
    $ chrome_arg $ check_arg $ check_policy_arg $ flight_cap_arg $ flight_level_arg
    $ spans_arg $ span_sample_arg)

let obs_enabled c =
  c.metrics_path <> None || c.flight_path <> None || c.profile || c.series_path <> None
  || c.chrome_path <> None || c.check || c.spans

(* Per-job instrument handles, harvested after the pool drains. Each job
   gets its own registry/recorder/profile (registries are not
   thread-safe; a job runs entirely on one pool domain). *)
type obs_handle = {
  job_name : string;
  j_metrics : Obs.Metrics.t option;
  j_recorder : Obs.Recorder.t option;
  j_profile : Obs.Profile.t option;
  j_timeline : Obs.Timeline.t option;
  j_watchdog : Obs.Watchdog.t option;
  j_span : Obs.Span.t option;
}

let wrap_thunk cfg ~name thunk =
  if not (obs_enabled cfg) then (thunk, None)
  else begin
    let metrics = if cfg.metrics_path <> None then Some (Obs.Metrics.create ()) else None in
    let recorder =
      if cfg.flight_path <> None || cfg.chrome_path <> None then
        Some (Obs.Recorder.create ~capacity:cfg.flight_cap ~level:cfg.flight_level ())
      else None
    in
    let profile = if cfg.profile then Some (Obs.Profile.create ()) else None in
    let timeline =
      if cfg.series_path <> None || cfg.chrome_path <> None then
        Some (Obs.Timeline.create ~interval:cfg.series_interval ())
      else None
    in
    let watchdog =
      if cfg.check then Some (Obs.Watchdog.create ?policy:cfg.check_policy ()) else None
    in
    let span =
      if cfg.spans then Some (Obs.Span.create ?recorder ~sample:cfg.span_sample ())
      else None
    in
    (match (watchdog, timeline) with
    | Some w, Some tl -> Obs.Watchdog.watch_timeline w tl
    | _ -> ());
    let scope = Obs.Scope.v ?metrics ?recorder ?profile ?timeline ?watchdog ?span () in
    let thunk () = Obs.Scope.with_scope scope thunk in
    ( thunk,
      Some
        {
          job_name = name;
          j_metrics = metrics;
          j_recorder = recorder;
          j_profile = profile;
          j_timeline = timeline;
          j_watchdog = watchdog;
          j_span = span;
        } )
  end

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file path content =
  mkdir_p (Filename.dirname path);
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc content)

(* Export collected instruments; returns [(job, profile-json)] pairs for
   the runner report. *)
let export_obs cfg handles =
  (match cfg.metrics_path with
  | Some path ->
      let buf = Buffer.create 4096 in
      List.iter
        (fun h ->
          match h.j_metrics with
          | Some m -> Buffer.add_string buf (Obs.Metrics.to_ndjson ~extra:[ ("job", h.job_name) ] m)
          | None -> ())
        handles;
      write_file path (Buffer.contents buf)
  | None -> ());
  (match cfg.flight_path with
  | Some path ->
      let csv = Filename.check_suffix path ".csv" in
      let buf = Buffer.create 4096 in
      List.iteri
        (fun i h ->
          match h.j_recorder with
          | Some r ->
              let extra = [ ("job", h.job_name) ] in
              Buffer.add_string buf
                (if csv then Obs.Recorder.to_csv ~header:(i = 0) ~extra r
                 else Obs.Recorder.to_ndjson ~extra r)
          | None -> ())
        handles;
      write_file path (Buffer.contents buf)
  | None -> ());
  (match cfg.series_path with
  | Some path ->
      let csv = Filename.check_suffix path ".csv" in
      let buf = Buffer.create 4096 in
      List.iteri
        (fun i h ->
          match h.j_timeline with
          | Some tl ->
              let extra = [ ("job", h.job_name) ] in
              Buffer.add_string buf
                (if csv then Obs.Timeline.to_csv ~header:(i = 0) ~extra tl
                 else Obs.Timeline.to_ndjson ~extra tl)
          | None -> ())
        handles;
      write_file path (Buffer.contents buf)
  | None -> ());
  (match cfg.chrome_path with
  | Some path ->
      let jobs =
        List.map (fun h -> (h.job_name, h.j_timeline, h.j_recorder, h.j_span)) handles
      in
      write_file path (Obs.Chrome_trace.to_string jobs)
  | None -> ());
  (if cfg.spans then
     List.iter
       (fun h ->
         match h.j_span with
         | Some sp ->
             Printf.eprintf "spans %s: sample 1/%d, started %d, completed %d, evicted %d\n%!"
               h.job_name (Obs.Span.sample sp) (Obs.Span.started sp)
               (Obs.Span.completed_count sp) (Obs.Span.evicted sp)
         | None -> ())
       handles);
  (if cfg.check then
     (* Under warn/quarantine the run survives past the first violation,
        so report every one the watchdog collected, not just the first. *)
     List.iter
       (fun h ->
         match h.j_watchdog with
         | Some w ->
             List.iter
               (fun v -> Printf.eprintf "%s%!" (Obs.Watchdog.report v))
               (Obs.Watchdog.violations w)
         | None -> ())
       handles);
  (if cfg.profile then
     List.iter
       (fun h ->
         match h.j_profile with
         | Some p -> Printf.eprintf "profile %s: %s\n%!" h.job_name (Obs.Profile.summary p)
         | None -> ())
       handles);
  List.filter_map
    (fun h -> Option.map (fun p -> (h.job_name, Obs.Profile.to_json p)) h.j_profile)
    handles

(* An armed fault plan changes what the renderer computes, so it joins
   the digest params (fault-free digests are unchanged — old cache
   entries stay valid) and wraps the thunk in the ambient arming that
   Scenario.run consults. *)
let fault_params = function
  | None -> []
  | Some (plan, fault_seed) ->
      [ ("faults", Faults.Plan.to_string plan); ("fault-seed", string_of_int fault_seed) ]

let arm_faults faults render =
  match faults with
  | None -> render
  | Some (plan, fault_seed) ->
      fun () ->
        Faults.Plan.with_armed (Some { Faults.Plan.plan; seed = fault_seed }) render

let job_of ?backend ?duration ?n ?faults ~seed ~obs (e : E.t) =
  let params = E.effective_params e ?backend ?duration ?n ~seed () @ fault_params faults in
  let render = arm_faults faults (fun () -> e.render ?backend ?duration ?n ~seed ()) in
  let thunk, handle = wrap_thunk obs ~name:e.id render in
  let job =
    R.Job.make ~name:e.id ~digest:(R.Job.digest_of_params ~name:e.id params) thunk
  in
  (job, handle)

(* A job whose watchdog tripped under the quarantine policy completed,
   but its numbers ran through a violated invariant: mark the result
   degraded so the telemetry table, JSON report and exit code say so. *)
let mark_quarantined ~handles results =
  let quarantined name =
    List.exists
      (fun h ->
        h.job_name = name
        && match h.j_watchdog with Some w -> Obs.Watchdog.degraded w | None -> false)
      handles
  in
  Array.map
    (fun (r : R.Job.result) ->
      if r.ok && quarantined r.name then
        { r with degraded = true; error = Some "watchdog quarantine: invariant violated" }
      else r)
    results

(* Run jobs, print their blocks to stdout in submission order (blank
   line between blocks, as `all` always did), telemetry to stderr so
   stdout rows stay byte-identical across -j levels and cache states.
   Returns the unified exit code (Telemetry.exit_code). *)
let run_and_report ~jobs ~no_cache ~report ~telemetry_to ~obs ~handles jobs_list =
  let no_cache = no_cache || obs_enabled obs in
  let cache = if no_cache then None else Some (R.Cache.create ()) in
  let config = R.Pool.config ~jobs ?cache () in
  let t0 = R.Telemetry.now_s () in
  let results = R.Pool.run config jobs_list in
  let results = mark_quarantined ~handles results in
  let total_wall_s = R.Telemetry.now_s () -. t0 in
  Array.iteri
    (fun i (r : R.Job.result) ->
      if i > 0 then print_newline ();
      print_string r.output)
    results;
  flush stdout;
  let tele = R.Telemetry.make ~pool_jobs:jobs ~total_wall_s results in
  (match telemetry_to with
  | Some oc ->
      output_string oc (R.Telemetry.summary tele);
      flush oc
  | None -> ());
  let profiles = export_obs obs handles in
  let report_path =
    match report with
    | Some p -> Some p
    | None when not no_cache -> Some (Filename.concat (R.Cache.default_dir ()) "last_run.json")
    | None -> None
  in
  Option.iter (fun path -> R.Telemetry.write_json ~profiles tele ~path) report_path;
  R.Telemetry.exit_code tele

let exp_cmd (e : E.t) =
  let info = Cmd.info e.id ~doc:e.title in
  match e.kind with
  | E.Timed default ->
      let run duration seed backend jobs report obs faults =
        let backend = validate_backend e backend in
        let job, handle = job_of ?backend ~duration ?faults ~seed ~obs e in
        exit
          (run_and_report ~jobs ~no_cache:true ~report ~telemetry_to:None ~obs
             ~handles:(Option.to_list handle) [ job ])
      in
      Cmd.v info
        Term.(
          const run $ duration_arg default $ seed_arg $ backend_arg $ jobs_arg $ report_arg
          $ obs_cfg_term $ faults_term)
  | E.Sized default ->
      let run n seed backend jobs report obs faults =
        let backend = validate_backend e backend in
        let job, handle = job_of ?backend ~n ?faults ~seed ~obs e in
        exit
          (run_and_report ~jobs ~no_cache:true ~report ~telemetry_to:None ~obs
             ~handles:(Option.to_list handle) [ job ])
      in
      Cmd.v info
        Term.(
          const run $ flows_arg default $ seed_arg $ backend_arg $ jobs_arg $ report_arg
          $ obs_cfg_term $ faults_term)

let all_cmd =
  (* Fault params join the job digests, so caching stays correct with
     --faults: same (plan, seed) hits, anything else misses. *)
  let run seed jobs no_cache report obs faults =
    let pairs = List.map (job_of ?faults ~seed ~obs) E.all in
    let jobs_list = List.map fst pairs in
    let handles = List.filter_map snd pairs in
    exit
      (run_and_report ~jobs ~no_cache ~report ~telemetry_to:(Some stderr) ~obs ~handles
         jobs_list)
  in
  Cmd.v
    (Cmd.info "all"
       ~doc:
         "Run every figure and experiment in DESIGN.md order on a domain pool (-j), with \
          result caching and run telemetry")
    Term.(const run $ seed_arg $ jobs_arg $ no_cache_arg $ report_arg $ obs_cfg_term $ faults_term)

let list_cmd =
  let run () =
    List.iter
      (fun (e : E.t) ->
        let default =
          match e.kind with
          | E.Timed d -> Printf.sprintf "duration %gs" d
          | E.Sized n -> Printf.sprintf "population %d" n
        in
        Printf.printf "%-6s %-18s %-13s %-7s %s\n" e.id
          ("[" ^ default ^ "]")
          (String.concat "|" e.backends)
          (if e.supports_faults then "faults" else "-")
          e.title)
      E.all
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:
         "List every experiment with its default parameters, supported backends, \
          fault-plan support (--faults), and description")
    Term.(const run $ const ())

let sweep_cmd =
  let ids_arg =
    let doc = "Experiments to sweep (default: all)." in
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let seeds_arg =
    let doc = "Comma-separated seeds axis." in
    Arg.(value & opt (list int) [ 42 ] & info [ "seeds" ] ~docv:"SEEDS" ~doc)
  in
  let durations_arg =
    let doc =
      "Comma-separated durations axis (seconds). Applies to timed experiments; sized ones \
       (fig2, a2, p1) keep their population and run once per seed."
    in
    Arg.(value & opt (list float) [] & info [ "durations" ] ~docv:"SECONDS" ~doc)
  in
  let populations_arg =
    let doc =
      "Comma-separated population-size axis. Applies to sized experiments (fig2, a2, p1); \
       timed ones ignore it and run once per (seed, duration)."
    in
    Arg.(value & opt (list int) [] & info [ "populations" ] ~docv:"N" ~doc)
  in
  let backends_arg =
    let doc =
      "Comma-separated backend axis (packet, fluid, hybrid). Points pairing an experiment \
       with a backend it does not support are skipped; single-backend experiments run \
       once regardless."
    in
    Arg.(value & opt (list string) [] & info [ "backends" ] ~docv:"BACKENDS" ~doc)
  in
  let run ids seeds durations populations backends jobs no_cache report obs faults =
    let no_cache = no_cache || obs_enabled obs in
    let ids = if ids = [] then List.map (fun (e : E.t) -> e.id) E.all else ids in
    let experiments =
      List.map
        (fun id ->
          match E.find id with
          | Some e -> e
          | None ->
              Printf.eprintf "ccsim sweep: unknown experiment %S\n" id;
              exit 2)
        ids
    in
    let axes =
      [ R.Sweep.axis "exp" ids; R.Sweep.ints "seed" seeds ]
      @ (if durations = [] then [] else [ R.Sweep.floats "duration" durations ])
      @ (if populations = [] then [] else [ R.Sweep.ints "n" populations ])
      @ if backends = [] then [] else [ R.Sweep.axis "backend" backends ]
    in
    (* Each experiment reads only the axes that apply to it (duration
       for timed, population for sized, backend for multi-backend);
       dedupe by digest so the irrelevant axes do not multiply runs. *)
    let seen = Hashtbl.create 64 in
    let pairs =
      List.filter_map
        (fun point ->
          let id = Option.get (R.Sweep.get point "exp") in
          let e = List.find (fun (e : E.t) -> e.id = id) experiments in
          let seed = int_of_string (Option.get (R.Sweep.get point "seed")) in
          let duration = Option.map float_of_string (R.Sweep.get point "duration") in
          let n = Option.map int_of_string (R.Sweep.get point "n") in
          let backend =
            match R.Sweep.get point "backend" with
            | Some b when List.length e.backends > 1 ->
                if List.mem b e.backends then Some b else None
            | Some _ | None -> None
          in
          let skip_unsupported =
            match R.Sweep.get point "backend" with
            | Some b -> List.length e.backends > 1 && not (List.mem b e.backends)
            | None -> false
          in
          if skip_unsupported then None
          else begin
            let params =
              E.effective_params e ?backend ?duration ?n ~seed () @ fault_params faults
            in
            let digest = R.Job.digest_of_params ~name:e.id params in
            if Hashtbl.mem seen digest then None
            else begin
              Hashtbl.add seen digest ();
              (* Name from the effective params, not the sweep point:
                 experiments ignore the axes that do not apply to them. *)
              let name =
                String.concat " " (e.id :: List.map (fun (k, v) -> k ^ "=" ^ v) params)
              in
              let render =
                arm_faults faults (fun () -> e.render ?backend ?duration ?n ~seed ())
              in
              let thunk, handle = wrap_thunk obs ~name render in
              Some (R.Job.make ~name ~digest thunk, handle)
            end
          end)
        (R.Sweep.points axes)
    in
    let jobs_list = List.map fst pairs in
    let handles = List.filter_map snd pairs in
    Printf.printf "sweep: %d job(s) on %d worker(s)\n\n" (List.length jobs_list) jobs;
    let cache = if no_cache then None else Some (R.Cache.create ()) in
    let config = R.Pool.config ~jobs ?cache () in
    let t0 = R.Telemetry.now_s () in
    let results = R.Pool.run config jobs_list in
    let results = mark_quarantined ~handles results in
    let total_wall_s = R.Telemetry.now_s () -. t0 in
    Array.iter
      (fun (r : R.Job.result) ->
        Printf.printf "== %s\n" r.name;
        print_string r.output;
        print_newline ())
      results;
    let tele = R.Telemetry.make ~pool_jobs:jobs ~total_wall_s results in
    print_string (R.Telemetry.summary tele);
    flush stdout;
    let profiles = export_obs obs handles in
    let report_path =
      match report with
      | Some p -> Some p
      | None when not no_cache ->
          Some (Filename.concat (R.Cache.default_dir ()) "last_sweep.json")
      | None -> None
    in
    Option.iter (fun path -> R.Telemetry.write_json ~profiles tele ~path) report_path;
    exit (R.Telemetry.exit_code tele)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Cross-product sweep over experiments x seeds x durations on a domain pool")
    Term.(
      const run $ ids_arg $ seeds_arg $ durations_arg $ populations_arg $ backends_arg
      $ jobs_arg $ no_cache_arg $ report_arg $ obs_cfg_term $ faults_term)

(* --- engine micro-benchmark (`ccsim perf`) --------------------------------- *)

(* A fixed matrix of engine-stressing scenarios, one per execution
   regime: pure packet dumbbell (e4), a heavier packet ablation slice
   (a4), the pure-fluid ODE stepper, and the hybrid coupling. Each row
   runs in-process under a fresh profile + metrics scope and lands in
   BENCH_engine.json; CI gates the quick variant's shape and trends the
   full variant against the checked-in baseline. *)
type perf_row = {
  row_name : string;
  row_exp : string;
  row_backend : string option;
  row_duration : float option;
  row_n : int option;
}

let perf_matrix ~quick =
  let t q f = Some (if quick then q else f) in
  let n q f = Some (if quick then q else f) in
  [
    (* Durations must clear each scenario's warmup (e4: 5s, a4: 15s). *)
    { row_name = "packet-dumbbell"; row_exp = "e4"; row_backend = None;
      row_duration = t 8.0 15.0; row_n = None };
    { row_name = "packet-sweep-slice"; row_exp = "a4"; row_backend = None;
      row_duration = t 16.0 24.0; row_n = None };
    { row_name = "fluid-population"; row_exp = "p1"; row_backend = Some "fluid";
      row_duration = None; row_n = n 2000 10_000 };
    { row_name = "hybrid-population"; row_exp = "p1"; row_backend = Some "hybrid";
      row_duration = None; row_n = n 150 300 };
  ]

let perf_run_row ~seed row =
  let e =
    match E.find row.row_exp with
    | Some e -> e
    | None -> failwith ("ccsim perf: unknown experiment " ^ row.row_exp)
  in
  let metrics = Obs.Metrics.create () in
  let profile = Obs.Profile.create () in
  let scope = Obs.Scope.v ~metrics ~profile () in
  let t0 = R.Telemetry.now_s () in
  let (_ : string) =
    Obs.Scope.with_scope scope (fun () ->
        e.render ?backend:row.row_backend ?duration:row.row_duration ?n:row.row_n ~seed ())
  in
  let wall_s = R.Telemetry.now_s () -. t0 in
  let heap_p99 =
    match Obs.Metrics.find_histogram metrics "engine_heap_depth" with
    | Some h -> Obs.Metrics.quantile h 0.99
    | None -> 0.0
  in
  (profile, wall_s, heap_p99)

let perf_row_json row (p, wall_s, heap_p99) =
  let fnum v = Printf.sprintf "%.6f" v in
  let delivered = Obs.Profile.packets_delivered p in
  let pkts_per_wall_s =
    if wall_s > 0.0 then float_of_int delivered /. wall_s else 0.0
  in
  Printf.sprintf
    "    {\"name\": \"%s\", \"experiment\": \"%s\", \"backend\": \"%s\", \"duration_s\": %s, \
     \"n\": %s, \"wall_s\": %s, \"sim_s\": %s, \"events_executed\": %d, \
     \"events_scheduled\": %d, \"events_cancelled\": %d, \"events_per_sec\": %.0f, \
     \"sim_speedup\": %.2f, \"pkts_enqueued\": %d, \"pkts_dequeued\": %d, \
     \"pkts_delivered\": %d, \"pkts_dropped\": %d, \"pkts_per_wall_s\": %.0f, \
     \"minor_words_per_event\": %.1f, \"minor_words_per_packet\": %.1f, \
     \"heap_depth_p99\": %.1f, \"max_heap_depth\": %d}"
    row.row_name row.row_exp
    (match row.row_backend with Some b -> b | None -> "packet")
    (match row.row_duration with Some d -> fnum d | None -> "null")
    (match row.row_n with Some n -> string_of_int n | None -> "null")
    (fnum wall_s) (fnum (Obs.Profile.sim_s p)) (Obs.Profile.events_executed p)
    (Obs.Profile.events_scheduled p) (Obs.Profile.events_cancelled p)
    (Obs.Profile.events_per_sec p) (Obs.Profile.sim_speedup p)
    (Obs.Profile.packets_enqueued p) (Obs.Profile.packets_dequeued p) delivered
    (Obs.Profile.packets_dropped p) pkts_per_wall_s
    (Obs.Profile.minor_words_per_event p) (Obs.Profile.minor_words_per_packet p)
    heap_p99 (Obs.Profile.max_heap_depth p)

let perf_cmd =
  let quick_arg =
    let doc =
      "Short variant for CI smoke runs: same matrix, smaller durations and populations. \
       Numbers are noisier; the baseline comparison uses the full variant."
    in
    Arg.(value & flag & info [ "quick" ] ~doc)
  in
  let out_arg =
    let doc = "Write the engine benchmark report (schema ccsim-engine/2) to $(docv)." in
    Arg.(value & opt string "BENCH_engine.json" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let iters_arg =
    let doc =
      "Run each matrix row $(docv) times and report the median iteration (by wall time). \
       Wall-clock metrics (events/s, pkts/wall-s) on a shared host are noisy; the median \
       row is what baseline comparisons should trend."
    in
    Arg.(value & opt positive_int 1 & info [ "iters" ] ~docv:"N" ~doc)
  in
  let run quick out seed iters =
    let rows = perf_matrix ~quick in
    let results =
      List.map
        (fun row ->
          let runs = List.init iters (fun _ -> perf_run_row ~seed row) in
          (* Median by wall time: deterministic work per iteration, so
             wall_s is the only axis the scheduler can perturb. *)
          let sorted =
            List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) runs
          in
          let ((p, wall_s, _) as res) = List.nth sorted ((iters - 1) / 2) in
          Printf.printf "%-20s %8.2fs wall  %9.0f events/s  %9.0f pkts/s  %7.1fx sim%s\n%!"
            row.row_name wall_s
            (Obs.Profile.events_per_sec p)
            (if wall_s > 0.0 then
               float_of_int (Obs.Profile.packets_delivered p) /. wall_s
             else 0.0)
            (Obs.Profile.sim_speedup p)
            (if iters > 1 then Printf.sprintf "  (median of %d)" iters else "");
          (row, res))
        rows
    in
    let buf = Buffer.create 4096 in
    Printf.bprintf buf
      "{\n  \"schema\": \"ccsim-engine/2\",\n  \"mode\": \"%s\",\n  \"seed\": %d,\n  \
       \"iters\": %d,\n  \
       \"host\": {\"date\": \"%s\", \"ocaml\": \"%s\", \"word_size\": %d, \"cores\": %d},\n  \
       \"rows\": [\n"
      (if quick then "quick" else "full")
      seed iters (R.Telemetry.date_utc ()) Sys.ocaml_version Sys.word_size
      (R.Telemetry.host_cores ());
    List.iteri
      (fun i (row, res) ->
        Buffer.add_string buf (perf_row_json row res);
        Buffer.add_string buf (if i = List.length results - 1 then "\n" else ",\n"))
      results;
    Buffer.add_string buf "  ]\n}\n";
    write_file out (Buffer.contents buf);
    Printf.printf "wrote %s (%s mode)\n" out (if quick then "quick" else "full");
    exit 0
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Benchmark the simulation engine itself: a fixed micro-scenario matrix (packet, \
          fluid, hybrid) run under the profiler, reporting events/s, simulated packets per \
          wall-second, allocation per event/packet and heap-depth quantiles to \
          BENCH_engine.json")
    Term.(const run $ quick_arg $ out_arg $ seed_arg $ iters_arg)

let analyze_cmd =
  let file_arg =
    let doc = "NDJSON series file produced by a run with --series." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SERIES_FILE" ~doc)
  in
  let warmup_arg =
    let doc = "Drop samples before this time (seconds) from elasticity classification." in
    Arg.(value & opt float 0.0 & info [ "warmup" ] ~docv:"SECONDS" ~doc)
  in
  let until_arg =
    let doc = "Drop samples after this time (seconds) from elasticity classification." in
    Arg.(value & opt (some float) None & info [ "until" ] ~docv:"SECONDS" ~doc)
  in
  let threshold_arg =
    let doc = "Elasticity p90 classification threshold (fig3's rule uses 0.5)." in
    Arg.(value & opt float 0.5 & info [ "threshold" ] ~docv:"X" ~doc)
  in
  let shift_threshold_arg =
    let doc =
      "Minimum largest-shift / mean ratio for a change-point verdict of \
       contention-consistent (fig2's rule uses 0.2)."
    in
    Arg.(value & opt float 0.2 & info [ "shift-threshold" ] ~docv:"X" ~doc)
  in
  let run file warmup until threshold shift_threshold =
    match Ccsim_measure.Offline.load file with
    | exception Sys_error msg ->
        Printf.eprintf "ccsim analyze: %s\n" msg;
        exit 2
    | exception Ccsim_measure.Offline.Parse_error msg ->
        Printf.eprintf "ccsim analyze: %s: %s\n" file msg;
        exit 2
    | series ->
        print_string
          (Ccsim_measure.Offline.render ~warmup ?hi:until ~threshold ~shift_threshold
             series);
        exit 0
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Re-run the change-point and elasticity detectors offline over a --series \
          recording; on a same-seed recording this reproduces the in-sim verdicts")
    Term.(
      const run $ file_arg $ warmup_arg $ until_arg $ threshold_arg $ shift_threshold_arg)

let explain_cmd =
  let file_arg =
    let doc = "NDJSON series file produced by a run with --series." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SERIES_FILE" ~doc)
  in
  let warmup_arg =
    let doc =
      "Drop samples before this time (seconds) from the analysis window (use the \
       scenario's warmup; fig3 uses 10)."
    in
    Arg.(value & opt float 0.0 & info [ "warmup" ] ~docv:"SECONDS" ~doc)
  in
  let until_arg =
    let doc = "Drop samples after this time (seconds) from the analysis window." in
    Arg.(value & opt (some float) None & info [ "until" ] ~docv:"SECONDS" ~doc)
  in
  let threshold_arg =
    let doc = "Elasticity p90 classification threshold (fig3's rule uses 0.5)." in
    Arg.(value & opt float 0.5 & info [ "threshold" ] ~docv:"X" ~doc)
  in
  let run file warmup until threshold =
    match Ccsim_measure.Offline.load file with
    | exception Sys_error msg ->
        Printf.eprintf "ccsim explain: %s\n" msg;
        exit 2
    | exception Ccsim_measure.Offline.Parse_error msg ->
        Printf.eprintf "ccsim explain: %s: %s\n" file msg;
        exit 2
    | series ->
        print_string
          (Ccsim_measure.Offline.render_explain ~warmup ?hi:until ~threshold series);
        exit 0
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Diagnose each flow's contention from a --series recording: dominant send limit \
          (app/rwnd/cwnd/pacing/recovery), queueing-delay share of RTT, bottleneck \
          occupancy and drop shares, contended time, and the scenario's cross-traffic \
          elasticity verdict (same rule as the online Nimbus detector)")
    Term.(const run $ file_arg $ warmup_arg $ until_arg $ threshold_arg)

let main =
  let doc = "reproduce 'How I Learned to Stop Worrying About CCA Contention' (HotNets '23)" in
  Cmd.group
    (Cmd.info "ccsim" ~version:"1.0.0" ~doc)
    (List.map exp_cmd E.all
    @ [ all_cmd; sweep_cmd; analyze_cmd; explain_cmd; perf_cmd; list_cmd ])

(* Unified exit codes (README): 0 ok, 1 verdict/job failure, 2 usage
   error, 124 timeout or unsupported backend. Cmdliner's defaults remap
   inconsistently (unknown options honour ~term_err while conv
   failures hard-code 124), so map the eval outcome ourselves: every
   command-line problem — unknown command, bad flag, malformed value —
   is a usage error. *)
let () =
  match Cmd.eval_value main with
  | Ok (`Ok ()) | Ok `Version | Ok `Help -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 125
