(* ccsim — regenerate the paper's figures and experiments from the CLI.

   Subcommands are generated from Ccsim_core.Experiments (DESIGN.md's
   index) and execute through Ccsim_runner: jobs on a domain pool
   (-j N), a content-addressed result cache, and run telemetry. `ccsim
   all` runs everything; `ccsim sweep` runs cross-products over
   experiments x seeds x durations. *)

open Cmdliner
module R = Ccsim_runner
module E = Ccsim_core.Experiments

let seed_arg =
  let doc = "Deterministic seed for the experiment." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let duration_arg default =
  let doc = "Simulated seconds per scenario." in
  Arg.(value & opt float default & info [ "duration" ] ~docv:"SECONDS" ~doc)

let flows_arg default =
  let doc = "Synthetic population size (flows/candidates to generate)." in
  Arg.(value & opt int default & info [ "flows" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc = "Worker domains; 1 runs serially (bit-identical to the pre-runner CLI)." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc = "Always recompute; do not read or write the result cache." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let report_arg =
  let doc = "Write the machine-readable JSON run report to $(docv)." in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let job_of ?duration ?n ~seed (e : E.t) =
  let params = E.effective_params e ?duration ?n ~seed () in
  R.Job.make ~name:e.id
    ~digest:(R.Job.digest_of_params ~name:e.id params)
    (fun () -> e.render ?duration ?n ~seed ())

(* Run jobs, print their blocks to stdout in submission order (blank
   line between blocks, as `all` always did), telemetry to stderr so
   stdout rows stay byte-identical across -j levels and cache states.
   Returns the exit code: non-zero if any job failed. *)
let run_and_report ~jobs ~no_cache ~report ~telemetry_to jobs_list =
  let cache = if no_cache then None else Some (R.Cache.create ()) in
  let config = R.Pool.config ~jobs ?cache () in
  let t0 = Unix.gettimeofday () in
  let results = R.Pool.run config jobs_list in
  let total_wall_s = Unix.gettimeofday () -. t0 in
  Array.iteri
    (fun i (r : R.Job.result) ->
      if i > 0 then print_newline ();
      print_string r.output)
    results;
  flush stdout;
  let tele = R.Telemetry.make ~pool_jobs:jobs ~total_wall_s results in
  (match telemetry_to with
  | Some oc ->
      output_string oc (R.Telemetry.summary tele);
      flush oc
  | None -> ());
  let report_path =
    match report with
    | Some p -> Some p
    | None when not no_cache -> Some (Filename.concat (R.Cache.default_dir ()) "last_run.json")
    | None -> None
  in
  Option.iter (fun path -> R.Telemetry.write_json tele ~path) report_path;
  if R.Telemetry.failures tele > 0 then 1 else 0

let exp_cmd (e : E.t) =
  let info = Cmd.info e.id ~doc:e.title in
  match e.kind with
  | E.Timed default ->
      let run duration seed jobs =
        exit
          (run_and_report ~jobs ~no_cache:true ~report:None ~telemetry_to:None
             [ job_of ~duration ~seed e ])
      in
      Cmd.v info Term.(const run $ duration_arg default $ seed_arg $ jobs_arg)
  | E.Sized default ->
      let run n seed jobs =
        exit
          (run_and_report ~jobs ~no_cache:true ~report:None ~telemetry_to:None
             [ job_of ~n ~seed e ])
      in
      Cmd.v info Term.(const run $ flows_arg default $ seed_arg $ jobs_arg)

let all_cmd =
  let run seed jobs no_cache report =
    let jobs_list = List.map (job_of ~seed) E.all in
    exit
      (run_and_report ~jobs ~no_cache ~report ~telemetry_to:(Some stderr) jobs_list)
  in
  Cmd.v
    (Cmd.info "all"
       ~doc:
         "Run every figure and experiment in DESIGN.md order on a domain pool (-j), with \
          result caching and run telemetry")
    Term.(const run $ seed_arg $ jobs_arg $ no_cache_arg $ report_arg)

let sweep_cmd =
  let ids_arg =
    let doc = "Experiments to sweep (default: all)." in
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let seeds_arg =
    let doc = "Comma-separated seeds axis." in
    Arg.(value & opt (list int) [ 42 ] & info [ "seeds" ] ~docv:"SEEDS" ~doc)
  in
  let durations_arg =
    let doc =
      "Comma-separated durations axis (seconds). Applies to timed experiments; sized ones \
       (fig2, a2) keep their population and run once per seed."
    in
    Arg.(value & opt (list float) [] & info [ "durations" ] ~docv:"SECONDS" ~doc)
  in
  let run ids seeds durations jobs no_cache report =
    let ids = if ids = [] then List.map (fun (e : E.t) -> e.id) E.all else ids in
    let experiments =
      List.map
        (fun id ->
          match E.find id with
          | Some e -> e
          | None ->
              Printf.eprintf "ccsim sweep: unknown experiment %S\n" id;
              exit 124)
        ids
    in
    let axes =
      [ R.Sweep.axis "exp" ids; R.Sweep.ints "seed" seeds ]
      @ (if durations = [] then [] else [ R.Sweep.floats "duration" durations ])
    in
    (* Sized experiments ignore the duration axis; dedupe by digest so
       they run once per seed rather than once per (seed, duration). *)
    let seen = Hashtbl.create 64 in
    let jobs_list =
      List.filter_map
        (fun point ->
          let id = Option.get (R.Sweep.get point "exp") in
          let e = List.find (fun (e : E.t) -> e.id = id) experiments in
          let seed = int_of_string (Option.get (R.Sweep.get point "seed")) in
          let duration = Option.map float_of_string (R.Sweep.get point "duration") in
          let params = E.effective_params e ?duration ~seed () in
          let digest = R.Job.digest_of_params ~name:e.id params in
          if Hashtbl.mem seen digest then None
          else begin
            Hashtbl.add seen digest ();
            (* Name from the effective params, not the sweep point: sized
               experiments ignore the duration axis. *)
            let name =
              String.concat " " (e.id :: List.map (fun (k, v) -> k ^ "=" ^ v) params)
            in
            Some (R.Job.make ~name ~digest (fun () -> e.render ?duration ~seed ()))
          end)
        (R.Sweep.points axes)
    in
    Printf.printf "sweep: %d job(s) on %d worker(s)\n\n" (List.length jobs_list) jobs;
    let cache = if no_cache then None else Some (R.Cache.create ()) in
    let config = R.Pool.config ~jobs ?cache () in
    let t0 = Unix.gettimeofday () in
    let results = R.Pool.run config jobs_list in
    let total_wall_s = Unix.gettimeofday () -. t0 in
    Array.iter
      (fun (r : R.Job.result) ->
        Printf.printf "== %s\n" r.name;
        print_string r.output;
        print_newline ())
      results;
    let tele = R.Telemetry.make ~pool_jobs:jobs ~total_wall_s results in
    print_string (R.Telemetry.summary tele);
    flush stdout;
    let report_path =
      match report with
      | Some p -> Some p
      | None when not no_cache ->
          Some (Filename.concat (R.Cache.default_dir ()) "last_sweep.json")
      | None -> None
    in
    Option.iter (fun path -> R.Telemetry.write_json tele ~path) report_path;
    exit (if R.Telemetry.failures tele > 0 then 1 else 0)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Cross-product sweep over experiments x seeds x durations on a domain pool")
    Term.(
      const run $ ids_arg $ seeds_arg $ durations_arg $ jobs_arg $ no_cache_arg $ report_arg)

let main =
  let doc = "reproduce 'How I Learned to Stop Worrying About CCA Contention' (HotNets '23)" in
  Cmd.group
    (Cmd.info "ccsim" ~version:"1.0.0" ~doc)
    (List.map exp_cmd E.all @ [ all_cmd; sweep_cmd ])

let () = exit (Cmd.eval main)
