(* Fluid-engine throughput benchmark: how many flows the fluid backend
   steps per wall-second at population scales the packet engine cannot
   touch (10^2 / 10^4 / 10^6 flows), writing BENCH_fluid.json.

   The populations mirror the p1 access-link shape (two flows per
   100 Mbit/s link, mixed CCAs, half the flows on/off) but run without
   instruments, so the numbers measure the stepping core: one Euler
   pass over the ODE state plus the queue/accounting settle pass per
   20 ms step. Wall time comes from the sanctioned
   Ccsim_runner.Telemetry clock.

   Usage: fluid_bench [OUT.json] [DATE] *)

module R = Ccsim_runner
module Fl = Ccsim_fluid
module U = Ccsim_util

let duration_s = 10.0
let dt_s = 0.02

let build ~flows ~seed =
  let models = [| Fl.Fluid_model.Cubic; Fl.Fluid_model.Bbr; Fl.Fluid_model.Reno |] in
  let engine = Fl.Fluid_engine.create ~dt_s ~seed () in
  let rng = U.Rng.create (seed + 1) in
  let nlinks = Int.max 1 (flows / 2) in
  let links =
    Array.init nlinks (fun _ ->
        Fl.Fluid_engine.add_link engine ~capacity_bps:(U.Units.mbps 100.0)
          ~buffer_bytes:625_000)
  in
  for i = 0 to flows - 1 do
    let link = links.(i mod nlinks) in
    let model = models.(i mod Array.length models) in
    let rtt_base_s = U.Rng.uniform rng ~lo:0.015 ~hi:0.08 in
    let on_off_s =
      if i mod 2 = 0 then None
      else
        Some (U.Rng.uniform rng ~lo:2.0 ~hi:8.0, U.Rng.uniform rng ~lo:4.0 ~hi:24.0)
    in
    ignore
      (Fl.Fluid_engine.add_flow engine ~link ~model ~rtt_base_s
         ~cap_bps:(U.Units.mbps 40.0) ?on_off_s ())
  done;
  engine

type sample = {
  flows : int;
  links : int;
  steps : int;
  build_wall_s : float;
  run_wall_s : float;
}

let run_scale ~flows ~seed =
  let t0 = R.Telemetry.now_s () in
  let engine = build ~flows ~seed in
  let t1 = R.Telemetry.now_s () in
  Fl.Fluid_engine.run engine ~until_s:duration_s;
  let t2 = R.Telemetry.now_s () in
  {
    flows;
    links = Fl.Fluid_engine.links engine;
    steps = int_of_float (Float.round (duration_s /. dt_s));
    build_wall_s = t1 -. t0;
    run_wall_s = t2 -. t1;
  }

let sample_json s =
  let flow_steps = float_of_int s.flows *. float_of_int s.steps in
  Printf.sprintf
    "    {\n\
    \      \"flows\": %d,\n\
    \      \"links\": %d,\n\
    \      \"steps\": %d,\n\
    \      \"sim_horizon_s\": %g,\n\
    \      \"build_wall_s\": %.3f,\n\
    \      \"run_wall_s\": %.3f,\n\
    \      \"flow_steps_per_wall_s\": %.3e,\n\
    \      \"flows_per_wall_s\": %.3e\n\
    \    }"
    s.flows s.links s.steps duration_s s.build_wall_s s.run_wall_s
    (flow_steps /. Float.max 1e-9 s.run_wall_s)
    (float_of_int s.flows /. Float.max 1e-9 s.run_wall_s)

let () =
  let out = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_fluid.json" in
  let date = if Array.length Sys.argv > 2 then Sys.argv.(2) else "unknown" in
  let scales = [ 100; 10_000; 1_000_000 ] in
  let samples =
    List.map
      (fun flows ->
        let s = run_scale ~flows ~seed:42 in
        Printf.eprintf "fluid_bench: %d flows: build %.3fs, run %.3fs\n%!" s.flows
          s.build_wall_s s.run_wall_s;
        s)
      scales
  in
  let body = String.concat ",\n" (List.map sample_json samples) in
  let json =
    Printf.sprintf
      "{\n\
      \  \"schema\": \"ccsim-bench-fluid/1\",\n\
      \  \"bench\": \"fluid engine stepping (Euler, dt %g s, %g s horizon, p1-like \
       population)\",\n\
      \  \"date\": %S,\n\
      \  \"scales\": [\n%s\n  ]\n}\n"
      dt_s duration_s date body
  in
  let oc = open_out_bin out in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc json)
