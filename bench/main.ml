(* Benchmark harness: regenerates every figure/experiment from
   Ccsim_core.Experiments (DESIGN.md's index) through the Ccsim_runner
   domain pool (printing the paper-style rows plus run telemetry), then
   measures the cost of regenerating each with Bechamel.

   The regeneration pass uses the experiments' default parameters and
   honours `-j N` for the pool size; the Bechamel pass uses shortened
   scenarios so each sample stays cheap -- the benches measure harness
   cost, not paper numbers. *)

open Bechamel
open Toolkit
module R = Ccsim_runner
module E = Ccsim_core.Experiments

let line title =
  print_newline ();
  print_endline (String.make 78 '=');
  print_endline title;
  print_endline (String.make 78 '=')

let regenerate_all ~jobs () =
  let job_of (e : E.t) =
    let params = E.effective_params e ~seed:42 () in
    R.Job.make ~name:e.id
      ~digest:(R.Job.digest_of_params ~name:e.id params)
      (fun () -> e.render ~seed:42 ())
  in
  let t0 = R.Telemetry.now_s () in
  let results = R.Pool.run (R.Pool.config ~jobs ()) (List.map job_of E.all) in
  let total_wall_s = R.Telemetry.now_s () -. t0 in
  List.iteri
    (fun i (e : E.t) ->
      line (Printf.sprintf "%s -- %s" (String.uppercase_ascii e.id) e.title);
      print_string results.(i).R.Job.output)
    E.all;
  line "runner telemetry";
  print_string (R.Telemetry.summary (R.Telemetry.make ~pool_jobs:jobs ~total_wall_s results))

(* --- Bechamel timing of scaled-down regenerations --------------------------- *)

let bench_tests =
  Test.make_grouped ~name:"ccsim"
    [
      Test.make ~name:"fig1_taxonomy"
        (Staged.stage (fun () -> ignore (Ccsim_core.Fig1_taxonomy.run ~duration:15.0 ())));
      Test.make ~name:"fig2_mlab"
        (Staged.stage (fun () -> ignore (Ccsim_core.Fig2.run ~n:1000 ())));
      Test.make ~name:"fig3_elasticity"
        (Staged.stage (fun () -> ignore (Ccsim_core.Fig3.run ~duration:12.0 ())));
      Test.make ~name:"e1_fq_isolation"
        (Staged.stage (fun () -> ignore (Ccsim_core.E1_fq.run ~duration:15.0 ())));
      Test.make ~name:"e2_throttling"
        (Staged.stage (fun () -> ignore (Ccsim_core.E2_throttle.run ~duration:8.0 ())));
      Test.make ~name:"e3_short_flows"
        (Staged.stage (fun () -> ignore (Ccsim_core.E3_short_flows.run ~duration:10.0 ())));
      Test.make ~name:"e4_app_limited"
        (Staged.stage (fun () -> ignore (Ccsim_core.E4_app_limited.run ~duration:8.0 ())));
      Test.make ~name:"e5_video_abr"
        (Staged.stage (fun () -> ignore (Ccsim_core.E5_video.run ~duration:25.0 ())));
      Test.make ~name:"e6_subpacket"
        (Staged.stage (fun () -> ignore (Ccsim_core.E6_subpacket.run ~duration:40.0 ())));
      Test.make ~name:"e7_jitter"
        (Staged.stage (fun () -> ignore (Ccsim_core.E7_jitter.run ~duration:8.0 ())));
      Test.make ~name:"x1_cellular"
        (Staged.stage (fun () -> ignore (Ccsim_core.X1_cellular.run ~duration:15.0 ())));
      Test.make ~name:"x2_harm"
        (Staged.stage (fun () -> ignore (Ccsim_core.X2_harm.run ~duration:12.0 ())));
      Test.make ~name:"x3_rcs"
        (Staged.stage (fun () -> ignore (Ccsim_core.X3_rcs.run ~duration:10.0 ())));
      Test.make ~name:"x4_scavenger"
        (Staged.stage (fun () -> ignore (Ccsim_core.X4_scavenger.run ~duration:40.0 ())));
      Test.make ~name:"a1_pulse_ablation"
        (Staged.stage (fun () -> ignore (Ccsim_core.A1_pulse_ablation.run ~duration:15.0 ())));
      Test.make ~name:"a2_penalty_ablation"
        (Staged.stage (fun () -> ignore (Ccsim_core.A2_penalty_ablation.run ~n:500 ())));
      Test.make ~name:"a3_quantum_ablation"
        (Staged.stage (fun () -> ignore (Ccsim_core.A3_quantum_ablation.run ~duration:15.0 ())));
      Test.make ~name:"a4_buffer_ablation"
        (Staged.stage (fun () -> ignore (Ccsim_core.A4_buffer_ablation.run ~duration:20.0 ())));
      (* Observability overhead: the same experiment with a full
         Ccsim_obs scope (metrics + flight recorder + profiler)
         attached. Compare against e4_app_limited above. *)
      Test.make ~name:"e4_app_limited_instrumented"
        (Staged.stage (fun () ->
             let scope =
               Ccsim_obs.Scope.v
                 ~metrics:(Ccsim_obs.Metrics.create ())
                 ~recorder:(Ccsim_obs.Recorder.create ())
                 ~profile:(Ccsim_obs.Profile.create ())
                 ()
             in
             Ccsim_obs.Scope.with_scope scope (fun () ->
                 ignore (Ccsim_core.E4_app_limited.run ~duration:8.0 ()))));
      (* Profiler-only overhead: the engine hot-path counters
         (scheduled/cancelled, packets, heap depth) plus sampled Gc
         deltas — the `ccsim perf` configuration. Compare against
         e4_app_limited above; EXPERIMENTS.md tracks this delta. *)
      Test.make ~name:"e4_app_limited_profile_only"
        (Staged.stage (fun () ->
             let scope = Ccsim_obs.Scope.v ~profile:(Ccsim_obs.Profile.create ()) () in
             Ccsim_obs.Scope.with_scope scope (fun () ->
                 ignore (Ccsim_core.E4_app_limited.run ~duration:8.0 ()))));
      (* Timeline sampling + invariant watchdog overhead (the --series
         --check path). Compare against e4_app_limited above. *)
      Test.make ~name:"e4_app_limited_timeline_check"
        (Staged.stage (fun () ->
             let timeline = Ccsim_obs.Timeline.create () in
             let watchdog = Ccsim_obs.Watchdog.create () in
             Ccsim_obs.Watchdog.watch_timeline watchdog timeline;
             let scope = Ccsim_obs.Scope.v ~timeline ~watchdog () in
             Ccsim_obs.Scope.with_scope scope (fun () ->
                 ignore (Ccsim_core.E4_app_limited.run ~duration:8.0 ()))));
    ]

let run_benchmarks () =
  line "Bechamel: regeneration cost per experiment (scaled-down scenarios)";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:10 ~stabilize:false ~quota:(Time.second 5.0) ~kde:None () in
  let raw = Benchmark.all cfg instances bench_tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Ccsim_util.Table.create
      ~columns:[ ("bench", Ccsim_util.Table.Left); ("seconds/run", Ccsim_util.Table.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] -> rows := (name, Printf.sprintf "%.3f" (ns /. 1e9)) :: !rows
      | Some _ | None -> rows := (name, "n/a") :: !rows)
    results;
  List.iter (fun (name, cell) -> Ccsim_util.Table.add_row table [ name; cell ])
    (List.sort compare !rows);
  Ccsim_util.Table.print table

let () =
  let only_bench = Array.exists (( = ) "--bench-only") Sys.argv in
  let only_rows = Array.exists (( = ) "--rows-only") Sys.argv in
  let jobs =
    let rec find i =
      if i >= Array.length Sys.argv - 1 then 1
      else if Sys.argv.(i) = "-j" then
        match int_of_string_opt Sys.argv.(i + 1) with Some n -> max 1 n | None -> 1
      else find (i + 1)
    in
    find 1
  in
  if not only_bench then regenerate_all ~jobs ();
  if not only_rows then run_benchmarks ()
